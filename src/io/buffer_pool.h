// Read-only LRU buffer pool with page pinning.
//
// Index samplers (notably ranked B+-Tree sampling, Sec. 2.2 of the paper)
// depend heavily on the DBMS buffer manager: once a leaf page is cached,
// further samples from it are free. The pool caches fixed-size pages of a
// File keyed by (file id, page number) and evicts the least-recently-used
// unpinned page when full.
//
// Concurrency: the pool is safely shareable across threads. Frames are
// striped into shards by key hash; each shard owns its frames, its LRU
// tick and its slice of the counters under one shard mutex, so threads
// touching different shards never contend. A page's bytes are written
// only while its frame is invalid (no pins) under the shard lock; the
// returned PageRef pins the frame, which blocks eviction, so readers can
// use the bytes lock-free for the PageRef's lifetime. With a single
// shard (the default for small pools) eviction order is exactly the
// classic global LRU the single-threaded tests and benches assume.

#ifndef MSV_IO_BUFFER_POOL_H_
#define MSV_IO_BUFFER_POOL_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "io/env.h"
#include "obs/metrics.h"
#include "util/result.h"
#include "util/sync.h"

namespace msv::io {

/// Pages acquired (pinned) through any BufferPool by the calling thread,
/// monotone over the thread's lifetime: hits, misses and batch pins all
/// count one page each. Per-statement cost attribution reads it before
/// and after the work — the same race-free idiom as ThreadDiskBusyUs().
uint64_t ThreadPoolPages();

struct BufferPoolStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;

  double HitRate() const {
    uint64_t total = hits + misses;
    return total ? static_cast<double>(hits) / static_cast<double>(total)
                 : 0.0;
  }

  BufferPoolStats operator-(const BufferPoolStats& b) const {
    return BufferPoolStats{hits - b.hits, misses - b.misses,
                           evictions - b.evictions};
  }

  BufferPoolStats& operator+=(const BufferPoolStats& b) {
    hits += b.hits;
    misses += b.misses;
    evictions += b.evictions;
    return *this;
  }
};

class BufferPool;

/// A pinned view of one cached page. The page stays resident while any
/// PageRef to it is alive. Movable, not copyable.
class PageRef {
 public:
  PageRef() = default;
  PageRef(PageRef&& other) noexcept { *this = std::move(other); }
  PageRef& operator=(PageRef&& other) noexcept;
  PageRef(const PageRef&) = delete;
  PageRef& operator=(const PageRef&) = delete;
  ~PageRef();

  /// Page bytes; size() bytes long (short final pages keep logical size).
  const char* data() const { return data_; }
  size_t size() const { return size_; }
  bool valid() const { return pool_ != nullptr; }

 private:
  friend class BufferPool;
  PageRef(BufferPool* pool, size_t shard, size_t frame, const char* data,
          size_t size)
      : pool_(pool), shard_(shard), frame_(frame), data_(data), size_(size) {}

  BufferPool* pool_ = nullptr;
  size_t shard_ = 0;
  size_t frame_ = 0;
  const char* data_ = nullptr;
  size_t size_ = 0;
};

/// Fixed-capacity page cache, shareable across threads (sharded LRU with
/// per-frame pinning; see the file comment for the locking model).
class BufferPool {
 public:
  /// `capacity_pages` frames of `page_size` bytes each, striped over
  /// `shards` locks. `shards == 0` picks automatically: one shard while
  /// the pool is too small to stripe meaningfully (exact global LRU, the
  /// historical semantics), else enough shards for concurrent serving.
  /// The shard count is clamped so every shard owns at least one frame.
  BufferPool(size_t page_size, size_t capacity_pages, size_t shards = 0);

  /// Returns a pinned reference to page `page_no` of `file`, reading it on
  /// a miss. `file_id` must uniquely identify the file across calls.
  /// Safe from any thread; `file` must support concurrent Read()s.
  Result<PageRef> Get(File* file, uint64_t file_id, uint64_t page_no);

  /// Batched Get: fills `out` with one pinned reference per entry of
  /// `page_nos`, in input order. Cached pages are pinned as hits; the
  /// misses are sorted, deduplicated and read with one File::ReadBatch
  /// call outside every shard lock, so runs of adjacent uncached pages
  /// coalesce into single modeled accesses even when cached frames split
  /// the requested range (partial-hit splitting). Counts one miss per
  /// unique page read from the device; duplicate occurrences and pages
  /// another thread filled concurrently count as hits. On error, no new
  /// pins are retained and `*out` is untouched.
  Status GetBatch(File* file, uint64_t file_id, const uint64_t* page_nos,
                  size_t count, std::vector<PageRef>* out);

  /// Drops every unpinned page (e.g. between benchmark queries).
  void Clear();

  size_t page_size() const { return page_size_; }
  size_t capacity() const { return capacity_; }
  size_t shard_count() const { return shards_.size(); }
  /// Counters since the last ResetStats() (delta against the baseline).
  BufferPoolStats stats() const;
  /// Counters since pool construction; never reset. (By value: totals
  /// are striped across shards and summed under the shard locks.)
  BufferPoolStats total_stats() const;

  /// Starts a new stats epoch: snapshots the baseline instead of zeroing
  /// (resets can no longer discard concurrent increments) and advances
  /// the global registry epoch in step.
  void ResetStats();

  /// Number of frames currently holding a page.
  size_t resident_pages() const;

  /// Accounting invariant check for tests: every shard's pin counts are
  /// non-negative, resident frames match the map, and (when no PageRef
  /// is outstanding) no frame is pinned. Returns a violation message or
  /// an empty string.
  std::string CheckAccounting() const;

 private:
  friend class PageRef;

  struct Frame {
    std::vector<char> data;
    uint64_t file_id = 0;
    uint64_t page_no = 0;
    size_t length = 0;  // logical bytes (short at EOF)
    int pins = 0;
    uint64_t tick = 0;
    bool valid = false;
  };

  struct Key {
    uint64_t file_id;
    uint64_t page_no;
    bool operator==(const Key& o) const {
      return file_id == o.file_id && page_no == o.page_no;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      return std::hash<uint64_t>()(k.file_id * 0x9e3779b97f4a7c15ULL ^
                                   k.page_no);
    }
  };

  /// One lock's worth of frames. Everything below `mu` is guarded by it;
  /// a frame's `data` bytes are additionally readable without the lock
  /// while the frame is pinned (pins block eviction and rewrites), which
  /// is why PageRef carries a raw data pointer rather than a Frame ref.
  struct Shard {
    mutable Mutex mu;
    std::vector<Frame> frames MSV_GUARDED_BY(mu);
    std::unordered_map<Key, size_t, KeyHash> map MSV_GUARDED_BY(mu);
    BufferPoolStats totals MSV_GUARDED_BY(mu);
    uint64_t tick MSV_GUARDED_BY(mu) = 0;
  };

  size_t ShardOf(const Key& key) const {
    return shards_.size() == 1 ? 0 : KeyHash()(key) % shards_.size();
  }

  void Unpin(size_t shard, size_t frame);
  /// Victim frame index within `shard` (lock held by caller).
  Result<size_t> FindVictim(Shard& shard) MSV_REQUIRES(shard.mu);

  size_t page_size_;
  size_t capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
  /// Guards the baseline only; never held together with a shard lock.
  mutable Mutex baseline_mu_;
  BufferPoolStats baseline_ MSV_GUARDED_BY(baseline_mu_);

  /// Cross-shard resident-frame count mirrored into the registry gauge
  /// on every change (relaxed; the gauge is advisory telemetry).
  std::atomic<size_t> resident_{0};

  // Registry series shared by every pool (process-wide totals; the
  // gauges are last-writer-wins across pools).
  obs::Counter* c_hits_;
  obs::Counter* c_misses_;
  obs::Counter* c_evictions_;
  obs::Gauge* g_resident_;
  obs::Gauge* g_capacity_;
};

}  // namespace msv::io

#endif  // MSV_IO_BUFFER_POOL_H_
