#include "io/env.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <limits>
#include <map>

#include "util/logging.h"
#include "util/sync.h"

namespace msv::io {

Status File::ReadExact(uint64_t offset, size_t n, char* scratch) {
  MSV_ASSIGN_OR_RETURN(size_t got, Read(offset, n, scratch));
  if (got != n) {
    return Status::IOError("short read: wanted " + std::to_string(n) +
                           " bytes at offset " + std::to_string(offset) +
                           ", got " + std::to_string(got));
  }
  return Status::OK();
}

Status File::ReadBatch(ReadRequest* reqs, size_t count) {
  for (size_t i = 0; i < count; ++i) {
    MSV_ASSIGN_OR_RETURN(reqs[i].got,
                         Read(reqs[i].offset, reqs[i].n, reqs[i].scratch));
  }
  return Status::OK();
}

namespace {

// ---------------------------------------------------------------------------
// In-memory environment
// ---------------------------------------------------------------------------

// Shared state of one in-memory file. Handles from concurrent OpenFile()
// calls alias the same data, so concurrent readers (e.g. parallel sampler
// workers) take the lock shared and writers take it exclusive.
struct MemFileData {
  mutable SharedMutex mu;
  std::vector<char> bytes MSV_GUARDED_BY(mu);
};

class MemFile : public File {
 public:
  explicit MemFile(std::shared_ptr<MemFileData> data)
      : data_(std::move(data)) {}

  Result<size_t> Read(uint64_t offset, size_t n, char* scratch) override {
    ReaderLock lock(data_->mu);
    const auto& bytes = data_->bytes;
    if (offset >= bytes.size()) return static_cast<size_t>(0);
    size_t avail = bytes.size() - static_cast<size_t>(offset);
    size_t got = std::min(n, avail);
    std::memcpy(scratch, bytes.data() + offset, got);
    return got;
  }

  Status ReadBatch(ReadRequest* reqs, size_t count) override {
    // One shared-lock acquisition for the whole batch.
    ReaderLock lock(data_->mu);
    const auto& bytes = data_->bytes;
    for (size_t i = 0; i < count; ++i) {
      ReadRequest& r = reqs[i];
      if (r.offset >= bytes.size()) {
        r.got = 0;
        continue;
      }
      size_t avail = bytes.size() - static_cast<size_t>(r.offset);
      r.got = std::min(r.n, avail);
      std::memcpy(r.scratch, bytes.data() + r.offset, r.got);
    }
    return Status::OK();
  }

  Status Write(uint64_t offset, const char* data, size_t n) override {
    if (n > std::numeric_limits<uint64_t>::max() - offset) {
      return Status::InvalidArgument(
          "MemFile::Write offset + length overflows uint64: offset=" +
          std::to_string(offset) + " n=" + std::to_string(n));
    }
    uint64_t end = offset + n;
    if (end > std::numeric_limits<size_t>::max()) {
      return Status::IOError("MemFile::Write beyond addressable memory: " +
                             std::to_string(end));
    }
    WriterLock lock(data_->mu);
    auto& bytes = data_->bytes;
    if (end > bytes.size()) bytes.resize(static_cast<size_t>(end));
    std::memcpy(bytes.data() + offset, data, n);
    return Status::OK();
  }

  Status Append(const char* data, size_t n) override {
    WriterLock lock(data_->mu);
    auto& bytes = data_->bytes;
    bytes.insert(bytes.end(), data, data + n);
    return Status::OK();
  }

  Result<uint64_t> Size() const override {
    ReaderLock lock(data_->mu);
    return static_cast<uint64_t>(data_->bytes.size());
  }

  Status Truncate(uint64_t size) override {
    WriterLock lock(data_->mu);
    data_->bytes.resize(static_cast<size_t>(size));
    return Status::OK();
  }

  Status Sync() override { return Status::OK(); }

 private:
  std::shared_ptr<MemFileData> data_;
};

class MemEnv : public Env {
 public:
  Result<std::unique_ptr<File>> OpenFile(const std::string& name,
                                         bool create) override {
    MutexLock lock(mu_);
    auto it = files_.find(name);
    if (it == files_.end()) {
      if (!create) {
        return Status::NotFound("no such file: " + name);
      }
      it = files_.emplace(name, std::make_shared<MemFileData>()).first;
    }
    return std::unique_ptr<File>(new MemFile(it->second));
  }

  Status DeleteFile(const std::string& name) override {
    MutexLock lock(mu_);
    if (files_.erase(name) == 0) {
      return Status::NotFound("no such file: " + name);
    }
    return Status::OK();
  }

  Status RenameFile(const std::string& from, const std::string& to) override {
    MutexLock lock(mu_);
    auto it = files_.find(from);
    if (it == files_.end()) {
      return Status::NotFound("no such file: " + from);
    }
    files_[to] = it->second;
    files_.erase(it);
    return Status::OK();
  }

  Result<bool> FileExists(const std::string& name) override {
    MutexLock lock(mu_);
    return files_.count(name) > 0;
  }

  Result<std::vector<std::string>> ListFiles() override {
    MutexLock lock(mu_);
    std::vector<std::string> names;
    names.reserve(files_.size());
    for (const auto& [name, _] : files_) names.push_back(name);
    return names;
  }

 private:
  Mutex mu_;
  std::map<std::string, std::shared_ptr<MemFileData>> files_ MSV_GUARDED_BY(mu_);
};

// ---------------------------------------------------------------------------
// POSIX environment (fd-based)
// ---------------------------------------------------------------------------

Status PosixError(const std::string& context, int err) {
  // glibc strerror is thread-safe (per-thread buffer); the portable
  // strerror_r dance is not worth it for error-path formatting.
  std::string msg =
      context + ": " + std::strerror(err);  // NOLINT(concurrency-mt-unsafe)
  if (err == ENOENT) return Status::NotFound(msg);
  return Status::IOError(msg);
}

// Positional pread/pwrite keep no shared cursor, so concurrent reads from
// sampler workers need no lock at all; only Append serializes (it must
// read the size and write at it atomically with respect to other appends
// through this handle).
class PosixFile : public File {
 public:
  explicit PosixFile(int fd) : fd_(fd) {}
  ~PosixFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Result<size_t> Read(uint64_t offset, size_t n, char* scratch) override {
    size_t got = 0;
    while (got < n) {
      ssize_t r = ::pread(fd_, scratch + got, n - got,
                          static_cast<off_t>(offset + got));
      if (r < 0) {
        if (errno == EINTR) continue;
        return PosixError("pread at " + std::to_string(offset), errno);
      }
      if (r == 0) break;  // end of file
      got += static_cast<size_t>(r);
    }
    return got;
  }

  Status ReadBatch(ReadRequest* reqs, size_t count) override {
    size_t i = 0;
    while (i < count) {
      // Maximal contiguous run in array order, capped at kMaxIov.
      size_t j = i + 1;
      while (j < count && j - i < kMaxIov &&
             reqs[j].offset == reqs[j - 1].offset + reqs[j - 1].n) {
        ++j;
      }
      MSV_RETURN_IF_ERROR(ReadRun(reqs + i, j - i));
      i = j;
    }
    return Status::OK();
  }

  Status Write(uint64_t offset, const char* data, size_t n) override {
    return WriteAt(offset, data, n);
  }

  Status Append(const char* data, size_t n) override {
    MutexLock lock(append_mu_);
    MSV_ASSIGN_OR_RETURN(uint64_t size, Size());
    return WriteAt(size, data, n);
  }

  Result<uint64_t> Size() const override {
    struct stat st;
    if (::fstat(fd_, &st) != 0) {
      return PosixError("fstat", errno);
    }
    return static_cast<uint64_t>(st.st_size);
  }

  Status Truncate(uint64_t size) override {
    if (::ftruncate(fd_, static_cast<off_t>(size)) != 0) {
      return PosixError("ftruncate to " + std::to_string(size), errno);
    }
    return Status::OK();
  }

  Status Sync() override {
    if (::fsync(fd_) != 0) {
      return PosixError("fsync", errno);
    }
    return Status::OK();
  }

 private:
  // IOV_MAX is at least 16 on any POSIX system; 256 keeps the stack iovec
  // array small while comfortably covering our leaf-batch sizes.
  static constexpr size_t kMaxIov = 256;

  // One contiguous run of requests, serviced with preadv(2). A short
  // preadv (signal, EOF, kernel split) resumes at the partial boundary;
  // the final byte count is distributed over the requests in order, so
  // each `got` matches what a standalone pread would have returned.
  Status ReadRun(ReadRequest* reqs, size_t count) {
    size_t total = 0;
    for (size_t i = 0; i < count; ++i) total += reqs[i].n;
    const uint64_t base = reqs[0].offset;
    size_t done = 0;
    while (done < total) {
      struct iovec iov[kMaxIov];
      int iovcnt = 0;
      size_t skip = done;
      for (size_t i = 0; i < count; ++i) {
        if (skip >= reqs[i].n) {
          skip -= reqs[i].n;
          continue;
        }
        iov[iovcnt].iov_base = reqs[i].scratch + skip;
        iov[iovcnt].iov_len = reqs[i].n - skip;
        skip = 0;
        ++iovcnt;
      }
      ssize_t r = ::preadv(fd_, iov, iovcnt, static_cast<off_t>(base + done));
      if (r < 0) {
        if (errno == EINTR) continue;
        return PosixError("preadv at " + std::to_string(base + done), errno);
      }
      if (r == 0) break;  // end of file
      done += static_cast<size_t>(r);
    }
    for (size_t i = 0; i < count; ++i) {
      reqs[i].got = std::min(reqs[i].n, done);
      done -= reqs[i].got;
    }
    return Status::OK();
  }

  Status WriteAt(uint64_t offset, const char* data, size_t n) {
    size_t put = 0;
    while (put < n) {
      ssize_t w = ::pwrite(fd_, data + put, n - put,
                           static_cast<off_t>(offset + put));
      if (w < 0) {
        if (errno == EINTR) continue;
        return PosixError("pwrite at " + std::to_string(offset), errno);
      }
      put += static_cast<size_t>(w);
    }
    return Status::OK();
  }

  Mutex append_mu_;
  int fd_;
};

class PosixEnv : public Env {
 public:
  explicit PosixEnv(std::string root) : root_(std::move(root)) {
    if (!root_.empty() && root_.back() != '/') root_ += '/';
  }

  Result<std::unique_ptr<File>> OpenFile(const std::string& name,
                                         bool create) override {
    std::string path = root_ + name;
    int flags = O_RDWR | O_CLOEXEC;
    if (create) flags |= O_CREAT;
    int fd = ::open(path.c_str(), flags, 0644);
    if (fd < 0) {
      return PosixError("open " + path, errno);
    }
    return std::unique_ptr<File>(new PosixFile(fd));
  }

  Status DeleteFile(const std::string& name) override {
    std::string path = root_ + name;
    if (::unlink(path.c_str()) != 0) {
      // Only a missing file is NotFound; EACCES, EISDIR, ... are I/O
      // errors the caller must not mistake for "already gone".
      return PosixError("unlink " + path, errno);
    }
    return Status::OK();
  }

  Status RenameFile(const std::string& from, const std::string& to) override {
    if (::rename((root_ + from).c_str(), (root_ + to).c_str()) != 0) {
      return PosixError("rename " + from + " -> " + to, errno);
    }
    return Status::OK();
  }

  Result<bool> FileExists(const std::string& name) override {
    std::string path = root_ + name;
    struct stat st;
    if (::stat(path.c_str(), &st) == 0) return true;
    // ENOENT: definitively absent. ENOTDIR: a path component is a file,
    // so `name` cannot exist either. Anything else (EACCES, EMFILE, ...)
    // means we could not determine existence — surface the error.
    if (errno == ENOENT || errno == ENOTDIR) return false;
    return PosixError("stat " + path, errno);
  }

  Result<std::vector<std::string>> ListFiles() override {
    std::string dir = root_.empty() ? "." : root_;
    DIR* d = ::opendir(dir.c_str());
    if (d == nullptr) {
      return PosixError("opendir " + dir, errno);
    }
    std::vector<std::string> names;
    errno = 0;
    while (struct dirent* entry = ::readdir(d)) {
      std::string n = entry->d_name;
      if (n == "." || n == "..") continue;
      // Only regular files participate in the Env namespace.
      struct stat st;
      if (::stat((dir + n).c_str(), &st) == 0 && S_ISREG(st.st_mode)) {
        names.push_back(std::move(n));
      }
      errno = 0;
    }
    int err = errno;
    ::closedir(d);
    if (err != 0) {
      return PosixError("readdir " + dir, err);
    }
    std::sort(names.begin(), names.end());
    return names;
  }

  Status SyncDir() override {
    std::string dir = root_.empty() ? "." : root_;
    int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
    if (fd < 0) {
      return PosixError("open dir " + dir, errno);
    }
    Status st = Status::OK();
    if (::fsync(fd) != 0) {
      st = PosixError("fsync dir " + dir, errno);
    }
    ::close(fd);
    return st;
  }

 private:
  std::string root_;
};

}  // namespace

Env* Env::Memory() {
  static MemEnv* env = new MemEnv();
  return env;
}

std::unique_ptr<Env> NewMemEnv() { return std::make_unique<MemEnv>(); }

std::unique_ptr<Env> NewPosixEnv(std::string root) {
  return std::make_unique<PosixEnv>(std::move(root));
}

}  // namespace msv::io
