#include "io/env.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <map>
#include <mutex>
#include <shared_mutex>

#include "util/logging.h"

namespace msv::io {

Status File::ReadExact(uint64_t offset, size_t n, char* scratch) {
  MSV_ASSIGN_OR_RETURN(size_t got, Read(offset, n, scratch));
  if (got != n) {
    return Status::IOError("short read: wanted " + std::to_string(n) +
                           " bytes at offset " + std::to_string(offset) +
                           ", got " + std::to_string(got));
  }
  return Status::OK();
}

namespace {

// ---------------------------------------------------------------------------
// In-memory environment
// ---------------------------------------------------------------------------

// Shared state of one in-memory file. Handles from concurrent OpenFile()
// calls alias the same data, so concurrent readers (e.g. parallel sampler
// workers) take the lock shared and writers take it exclusive.
struct MemFileData {
  mutable std::shared_mutex mu;
  std::vector<char> bytes;
};

class MemFile : public File {
 public:
  explicit MemFile(std::shared_ptr<MemFileData> data)
      : data_(std::move(data)) {}

  Result<size_t> Read(uint64_t offset, size_t n, char* scratch) override {
    std::shared_lock<std::shared_mutex> lock(data_->mu);
    const auto& bytes = data_->bytes;
    if (offset >= bytes.size()) return static_cast<size_t>(0);
    size_t avail = bytes.size() - static_cast<size_t>(offset);
    size_t got = std::min(n, avail);
    std::memcpy(scratch, bytes.data() + offset, got);
    return got;
  }

  Status Write(uint64_t offset, const char* data, size_t n) override {
    std::unique_lock<std::shared_mutex> lock(data_->mu);
    auto& bytes = data_->bytes;
    uint64_t end = offset + n;
    if (end > bytes.size()) bytes.resize(static_cast<size_t>(end));
    std::memcpy(bytes.data() + offset, data, n);
    return Status::OK();
  }

  Status Append(const char* data, size_t n) override {
    std::unique_lock<std::shared_mutex> lock(data_->mu);
    auto& bytes = data_->bytes;
    bytes.insert(bytes.end(), data, data + n);
    return Status::OK();
  }

  Result<uint64_t> Size() const override {
    std::shared_lock<std::shared_mutex> lock(data_->mu);
    return static_cast<uint64_t>(data_->bytes.size());
  }

  Status Truncate(uint64_t size) override {
    std::unique_lock<std::shared_mutex> lock(data_->mu);
    data_->bytes.resize(static_cast<size_t>(size));
    return Status::OK();
  }

  Status Sync() override { return Status::OK(); }

 private:
  std::shared_ptr<MemFileData> data_;
};

class MemEnv : public Env {
 public:
  Result<std::unique_ptr<File>> OpenFile(const std::string& name,
                                         bool create) override {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = files_.find(name);
    if (it == files_.end()) {
      if (!create) {
        return Status::NotFound("no such file: " + name);
      }
      it = files_.emplace(name, std::make_shared<MemFileData>()).first;
    }
    return std::unique_ptr<File>(new MemFile(it->second));
  }

  Status DeleteFile(const std::string& name) override {
    std::lock_guard<std::mutex> lock(mu_);
    if (files_.erase(name) == 0) {
      return Status::NotFound("no such file: " + name);
    }
    return Status::OK();
  }

  Status RenameFile(const std::string& from, const std::string& to) override {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = files_.find(from);
    if (it == files_.end()) {
      return Status::NotFound("no such file: " + from);
    }
    files_[to] = it->second;
    files_.erase(it);
    return Status::OK();
  }

  Result<bool> FileExists(const std::string& name) override {
    std::lock_guard<std::mutex> lock(mu_);
    return files_.count(name) > 0;
  }

  Result<std::vector<std::string>> ListFiles() override {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::string> names;
    names.reserve(files_.size());
    for (const auto& [name, _] : files_) names.push_back(name);
    return names;
  }

 private:
  std::mutex mu_;
  std::map<std::string, std::shared_ptr<MemFileData>> files_;
};

// ---------------------------------------------------------------------------
// POSIX environment (stdio-based)
// ---------------------------------------------------------------------------

// A FILE* has one shared cursor, so the fseek+fread/fwrite pairs must not
// interleave across threads; one mutex per open handle serializes them.
class PosixFile : public File {
 public:
  explicit PosixFile(std::FILE* f) : f_(f) {}
  ~PosixFile() override {
    if (f_ != nullptr) std::fclose(f_);
  }

  Result<size_t> Read(uint64_t offset, size_t n, char* scratch) override {
    std::lock_guard<std::mutex> lock(mu_);
    if (std::fseek(f_, static_cast<long>(offset), SEEK_SET) != 0) {
      return Status::IOError(std::string("fseek: ") + std::strerror(errno));
    }
    size_t got = std::fread(scratch, 1, n, f_);
    if (got < n && std::ferror(f_)) {
      std::clearerr(f_);
      return Status::IOError("fread failed");
    }
    return got;
  }

  Status Write(uint64_t offset, const char* data, size_t n) override {
    std::lock_guard<std::mutex> lock(mu_);
    if (std::fseek(f_, static_cast<long>(offset), SEEK_SET) != 0) {
      return Status::IOError(std::string("fseek: ") + std::strerror(errno));
    }
    if (std::fwrite(data, 1, n, f_) != n) {
      return Status::IOError("fwrite failed");
    }
    return Status::OK();
  }

  Status Append(const char* data, size_t n) override {
    std::lock_guard<std::mutex> lock(mu_);
    if (std::fseek(f_, 0, SEEK_END) != 0) {
      return Status::IOError(std::string("fseek: ") + std::strerror(errno));
    }
    if (std::fwrite(data, 1, n, f_) != n) {
      return Status::IOError("fwrite failed");
    }
    return Status::OK();
  }

  Result<uint64_t> Size() const override {
    std::lock_guard<std::mutex> lock(mu_);
    long cur = std::ftell(f_);
    if (std::fseek(f_, 0, SEEK_END) != 0) {
      return Status::IOError("fseek failed");
    }
    long size = std::ftell(f_);
    std::fseek(f_, cur, SEEK_SET);
    if (size < 0) return Status::IOError("ftell failed");
    return static_cast<uint64_t>(size);
  }

  Status Truncate(uint64_t size) override {
    // stdio has no portable truncate; emulate shrink by rewrite only when
    // extending (the library only ever extends files).
    MSV_ASSIGN_OR_RETURN(uint64_t cur, Size());
    if (size < cur) {
      return Status::NotSupported("PosixFile::Truncate cannot shrink");
    }
    if (size > cur) {
      char zero = 0;
      return Write(size - 1, &zero, 1);
    }
    return Status::OK();
  }

  Status Sync() override {
    if (std::fflush(f_) != 0) return Status::IOError("fflush failed");
    return Status::OK();
  }

 private:
  mutable std::mutex mu_;
  std::FILE* f_;
};

class PosixEnv : public Env {
 public:
  explicit PosixEnv(std::string root) : root_(std::move(root)) {
    if (!root_.empty() && root_.back() != '/') root_ += '/';
  }

  Result<std::unique_ptr<File>> OpenFile(const std::string& name,
                                         bool create) override {
    std::string path = root_ + name;
    std::FILE* f = std::fopen(path.c_str(), "r+b");
    if (f == nullptr) {
      if (!create) return Status::NotFound("no such file: " + path);
      f = std::fopen(path.c_str(), "w+b");
      if (f == nullptr) {
        return Status::IOError("cannot create " + path + ": " +
                               std::strerror(errno));
      }
    }
    return std::unique_ptr<File>(new PosixFile(f));
  }

  Status DeleteFile(const std::string& name) override {
    std::string path = root_ + name;
    if (std::remove(path.c_str()) != 0) {
      return Status::NotFound("cannot remove " + path);
    }
    return Status::OK();
  }

  Status RenameFile(const std::string& from, const std::string& to) override {
    if (std::rename((root_ + from).c_str(), (root_ + to).c_str()) != 0) {
      return Status::IOError("rename " + from + " -> " + to + " failed");
    }
    return Status::OK();
  }

  Result<bool> FileExists(const std::string& name) override {
    std::string path = root_ + name;
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) return false;
    std::fclose(f);
    return true;
  }

  Result<std::vector<std::string>> ListFiles() override {
    return Status::NotSupported("PosixEnv::ListFiles");
  }

 private:
  std::string root_;
};

}  // namespace

Env* Env::Memory() {
  static MemEnv* env = new MemEnv();
  return env;
}

std::unique_ptr<Env> NewMemEnv() { return std::make_unique<MemEnv>(); }

std::unique_ptr<Env> NewPosixEnv(std::string root) {
  return std::make_unique<PosixEnv>(std::move(root));
}

}  // namespace msv::io
