#include "io/buffer_pool.h"

#include <limits>

#include "util/logging.h"

namespace msv::io {

PageRef& PageRef::operator=(PageRef&& other) noexcept {
  if (this != &other) {
    if (pool_ != nullptr) pool_->Unpin(frame_);
    pool_ = other.pool_;
    frame_ = other.frame_;
    data_ = other.data_;
    size_ = other.size_;
    other.pool_ = nullptr;
    other.data_ = nullptr;
    other.size_ = 0;
  }
  return *this;
}

PageRef::~PageRef() {
  if (pool_ != nullptr) pool_->Unpin(frame_);
}

BufferPool::BufferPool(size_t page_size, size_t capacity_pages)
    : page_size_(page_size), capacity_(capacity_pages) {
  MSV_CHECK(page_size_ > 0);
  MSV_CHECK(capacity_ > 0);
  frames_.resize(capacity_);
  map_.reserve(capacity_ * 2);
  obs::MetricRegistry& reg = obs::MetricRegistry::Global();
  c_hits_ = reg.GetCounter("io.pool.hits");
  c_misses_ = reg.GetCounter("io.pool.misses");
  c_evictions_ = reg.GetCounter("io.pool.evictions");
}

void BufferPool::ResetStats() {
  baseline_ = totals_;
  obs::MetricRegistry::Global().BeginEpoch();
}

void BufferPool::Unpin(size_t frame) {
  MSV_DCHECK(frame < frames_.size());
  MSV_DCHECK(frames_[frame].pins > 0);
  --frames_[frame].pins;
}

Result<size_t> BufferPool::FindVictim() {
  // First prefer an empty frame, then the unpinned frame with the oldest
  // access tick. Linear scan is fine at the pool sizes we use.
  size_t victim = frames_.size();
  uint64_t oldest = std::numeric_limits<uint64_t>::max();
  for (size_t i = 0; i < frames_.size(); ++i) {
    const Frame& f = frames_[i];
    if (!f.valid) return i;
    if (f.pins == 0 && f.tick < oldest) {
      oldest = f.tick;
      victim = i;
    }
  }
  if (victim == frames_.size()) {
    return Status::ResourceExhausted("buffer pool: all pages pinned");
  }
  return victim;
}

Result<PageRef> BufferPool::Get(File* file, uint64_t file_id,
                                uint64_t page_no) {
  Key key{file_id, page_no};
  auto it = map_.find(key);
  if (it != map_.end()) {
    Frame& f = frames_[it->second];
    ++totals_.hits;
    c_hits_->Add();
    f.tick = ++tick_;
    ++f.pins;
    return PageRef(this, it->second, f.data.data(), f.length);
  }

  ++totals_.misses;
  c_misses_->Add();
  MSV_ASSIGN_OR_RETURN(size_t frame_idx, FindVictim());
  Frame& f = frames_[frame_idx];
  if (f.valid) {
    map_.erase(Key{f.file_id, f.page_no});
    ++totals_.evictions;
    c_evictions_->Add();
    f.valid = false;
  }
  if (f.data.size() != page_size_) f.data.resize(page_size_);

  MSV_ASSIGN_OR_RETURN(
      size_t got,
      file->Read(page_no * page_size_, page_size_, f.data.data()));
  if (got == 0) {
    return Status::OutOfRange("page " + std::to_string(page_no) +
                              " is beyond end of file");
  }

  f.file_id = file_id;
  f.page_no = page_no;
  f.length = got;
  f.pins = 1;
  f.tick = ++tick_;
  f.valid = true;
  map_.emplace(key, frame_idx);
  return PageRef(this, frame_idx, f.data.data(), f.length);
}

void BufferPool::Clear() {
  for (size_t i = 0; i < frames_.size(); ++i) {
    Frame& f = frames_[i];
    if (f.valid && f.pins == 0) {
      map_.erase(Key{f.file_id, f.page_no});
      f.valid = false;
    }
  }
}

}  // namespace msv::io
