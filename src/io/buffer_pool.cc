#include "io/buffer_pool.h"

#include <algorithm>
#include <cstring>
#include <limits>

#include "util/logging.h"

namespace msv::io {

namespace {
// Per-thread attribution of pages pinned (see ThreadPoolPages()).
thread_local uint64_t tls_pool_pages = 0;
}  // namespace

uint64_t ThreadPoolPages() { return tls_pool_pages; }

PageRef& PageRef::operator=(PageRef&& other) noexcept {
  if (this != &other) {
    if (pool_ != nullptr) pool_->Unpin(shard_, frame_);
    pool_ = other.pool_;
    shard_ = other.shard_;
    frame_ = other.frame_;
    data_ = other.data_;
    size_ = other.size_;
    other.pool_ = nullptr;
    other.data_ = nullptr;
    other.size_ = 0;
  }
  return *this;
}

PageRef::~PageRef() {
  if (pool_ != nullptr) pool_->Unpin(shard_, frame_);
}

namespace {

// Below this capacity the pool stays unsharded: striping a handful of
// frames would let hash skew starve a shard, and tiny pools are the
// single-threaded test/bench configuration where exact global LRU
// eviction order is observable behaviour.
constexpr size_t kMinCapacityForAutoSharding = 64;
constexpr size_t kDefaultShards = 8;
constexpr size_t kMinFramesPerShard = 8;

size_t PickShards(size_t capacity, size_t requested) {
  size_t shards = requested;
  if (shards == 0) {
    shards = capacity < kMinCapacityForAutoSharding ? 1 : kDefaultShards;
  }
  shards = std::min(shards, std::max<size_t>(1, capacity / kMinFramesPerShard));
  return std::max<size_t>(1, shards);
}

}  // namespace

BufferPool::BufferPool(size_t page_size, size_t capacity_pages, size_t shards)
    : page_size_(page_size), capacity_(capacity_pages) {
  MSV_CHECK(page_size_ > 0);
  MSV_CHECK(capacity_ > 0);
  const size_t num_shards = PickShards(capacity_, shards);
  shards_.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    auto shard = std::make_unique<Shard>();
    // Distribute frames round-robin so sizes differ by at most one.
    size_t frames = capacity_ / num_shards + (s < capacity_ % num_shards);
    shard->frames.resize(frames);
    shard->map.reserve(frames * 2);
    shards_.push_back(std::move(shard));
  }
  obs::MetricRegistry& reg = obs::MetricRegistry::Global();
  c_hits_ = reg.GetCounter("io.pool.hits");
  c_misses_ = reg.GetCounter("io.pool.misses");
  c_evictions_ = reg.GetCounter("io.pool.evictions");
  g_resident_ = reg.GetGauge("io.pool.resident_pages");
  g_capacity_ = reg.GetGauge("io.pool.capacity_pages");
  g_capacity_->Set(static_cast<double>(capacity_));
  g_resident_->Set(0.0);
}

BufferPoolStats BufferPool::total_stats() const {
  BufferPoolStats sum;
  for (const auto& shard : shards_) {
    MutexLock lock(shard->mu);
    sum += shard->totals;
  }
  return sum;
}

BufferPoolStats BufferPool::stats() const {
  BufferPoolStats sum = total_stats();
  MutexLock lock(baseline_mu_);
  return sum - baseline_;
}

void BufferPool::ResetStats() {
  BufferPoolStats sum = total_stats();
  {
    MutexLock lock(baseline_mu_);
    baseline_ = sum;
  }
  obs::MetricRegistry::Global().BeginEpoch();
}

size_t BufferPool::resident_pages() const {
  size_t resident = 0;
  for (const auto& shard : shards_) {
    MutexLock lock(shard->mu);
    resident += shard->map.size();
  }
  return resident;
}

std::string BufferPool::CheckAccounting() const {
  for (size_t s = 0; s < shards_.size(); ++s) {
    const Shard& shard = *shards_[s];
    MutexLock lock(shard.mu);
    size_t valid = 0;
    for (size_t i = 0; i < shard.frames.size(); ++i) {
      const Frame& f = shard.frames[i];
      if (f.pins < 0) {
        return "shard " + std::to_string(s) + " frame " + std::to_string(i) +
               ": negative pin count";
      }
      if (!f.valid && f.pins != 0) {
        return "shard " + std::to_string(s) + " frame " + std::to_string(i) +
               ": invalid frame is pinned";
      }
      if (f.valid) {
        ++valid;
        auto it = shard.map.find(Key{f.file_id, f.page_no});
        if (it == shard.map.end() || it->second != i) {
          return "shard " + std::to_string(s) + " frame " + std::to_string(i) +
                 ": valid frame missing from the map";
        }
      }
    }
    if (valid != shard.map.size()) {
      return "shard " + std::to_string(s) + ": map has " +
             std::to_string(shard.map.size()) + " entries but " +
             std::to_string(valid) + " valid frames";
    }
    BufferPoolStats t = shard.totals;
    if (t.evictions > t.misses) {
      return "shard " + std::to_string(s) + ": more evictions than misses";
    }
  }
  return "";
}

void BufferPool::Unpin(size_t shard_idx, size_t frame) {
  Shard& shard = *shards_[shard_idx];
  MutexLock lock(shard.mu);
  MSV_DCHECK(frame < shard.frames.size());
  MSV_DCHECK(shard.frames[frame].pins > 0);
  --shard.frames[frame].pins;
}

Result<size_t> BufferPool::FindVictim(Shard& shard) {
  // First prefer an empty frame, then the unpinned frame with the oldest
  // access tick. Linear scan is fine at the per-shard sizes we use.
  size_t victim = shard.frames.size();
  uint64_t oldest = std::numeric_limits<uint64_t>::max();
  for (size_t i = 0; i < shard.frames.size(); ++i) {
    const Frame& f = shard.frames[i];
    if (!f.valid) return i;
    if (f.pins == 0 && f.tick < oldest) {
      oldest = f.tick;
      victim = i;
    }
  }
  if (victim == shard.frames.size()) {
    return Status::ResourceExhausted("buffer pool: all pages pinned");
  }
  return victim;
}

Result<PageRef> BufferPool::Get(File* file, uint64_t file_id,
                                uint64_t page_no) {
  Key key{file_id, page_no};
  const size_t shard_idx = ShardOf(key);
  Shard& shard = *shards_[shard_idx];
  MutexLock lock(shard.mu);
  auto it = shard.map.find(key);
  if (it != shard.map.end()) {
    Frame& f = shard.frames[it->second];
    ++shard.totals.hits;
    c_hits_->Add();
    ++tls_pool_pages;
    f.tick = ++shard.tick;
    ++f.pins;
    return PageRef(this, shard_idx, it->second, f.data.data(), f.length);
  }

  ++shard.totals.misses;
  c_misses_->Add();
  MSV_ASSIGN_OR_RETURN(size_t frame_idx, FindVictim(shard));
  Frame& f = shard.frames[frame_idx];
  if (f.valid) {
    shard.map.erase(Key{f.file_id, f.page_no});
    ++shard.totals.evictions;
    c_evictions_->Add();
    g_resident_->Set(static_cast<double>(
        resident_.fetch_sub(1, std::memory_order_relaxed) - 1));
    f.valid = false;
  }
  if (f.data.size() != page_size_) f.data.resize(page_size_);

  // The read happens under the shard lock, so two threads missing on the
  // same page never fill two frames; misses on other shards proceed in
  // parallel. The frame is invalid and unpinned here, so no concurrent
  // reader can observe the bytes mid-write.
  MSV_ASSIGN_OR_RETURN(
      size_t got,
      file->Read(page_no * page_size_, page_size_, f.data.data()));
  if (got == 0) {
    return Status::OutOfRange("page " + std::to_string(page_no) +
                              " is beyond end of file");
  }

  f.file_id = file_id;
  f.page_no = page_no;
  f.length = got;
  f.pins = 1;
  f.tick = ++shard.tick;
  f.valid = true;
  shard.map.emplace(key, frame_idx);
  ++tls_pool_pages;
  g_resident_->Set(static_cast<double>(
      resident_.fetch_add(1, std::memory_order_relaxed) + 1));
  return PageRef(this, shard_idx, frame_idx, f.data.data(), f.length);
}

Status BufferPool::GetBatch(File* file, uint64_t file_id,
                            const uint64_t* page_nos, size_t count,
                            std::vector<PageRef>* out) {
  // Phase A: probe each occurrence, pinning hits. One shard lock at a
  // time, never two — the phases below keep that ordering invariant.
  std::vector<PageRef> refs(count);
  std::vector<size_t> missed_pos;
  for (size_t i = 0; i < count; ++i) {
    Key key{file_id, page_nos[i]};
    const size_t shard_idx = ShardOf(key);
    Shard& shard = *shards_[shard_idx];
    MutexLock lock(shard.mu);
    auto it = shard.map.find(key);
    if (it == shard.map.end()) {
      missed_pos.push_back(i);
      continue;
    }
    Frame& f = shard.frames[it->second];
    ++shard.totals.hits;
    c_hits_->Add();
    ++tls_pool_pages;
    f.tick = ++shard.tick;
    ++f.pins;
    refs[i] = PageRef(this, shard_idx, it->second, f.data.data(), f.length);
  }

  if (!missed_pos.empty()) {
    // Phase B: unique missed pages in ascending order — the elevator
    // schedule, which also makes adjacent pages contiguous in array
    // order so File::ReadBatch can coalesce them. The device read runs
    // outside every shard lock.
    std::vector<uint64_t> pages;
    pages.reserve(missed_pos.size());
    for (size_t pos : missed_pos) pages.push_back(page_nos[pos]);
    std::sort(pages.begin(), pages.end());
    pages.erase(std::unique(pages.begin(), pages.end()), pages.end());

    std::vector<char> scratch(pages.size() * page_size_);
    std::vector<ReadRequest> reqs(pages.size());
    for (size_t k = 0; k < pages.size(); ++k) {
      reqs[k].offset = pages[k] * page_size_;
      reqs[k].n = page_size_;
      reqs[k].scratch = scratch.data() + k * page_size_;
    }
    MSV_RETURN_IF_ERROR(file->ReadBatch(reqs.data(), reqs.size()));
    for (size_t k = 0; k < pages.size(); ++k) {
      if (reqs[k].got == 0) {
        return Status::OutOfRange("page " + std::to_string(pages[k]) +
                                  " is beyond end of file");
      }
    }

    // Phase C: install each unique page and pin every occurrence inside
    // one shard critical section (a frame pinned at insert can never be
    // evicted between install and pin).
    for (size_t k = 0; k < pages.size(); ++k) {
      const uint64_t page_no = pages[k];
      Key key{file_id, page_no};
      const size_t shard_idx = ShardOf(key);
      Shard& shard = *shards_[shard_idx];
      MutexLock lock(shard.mu);
      size_t frame_idx;
      auto it = shard.map.find(key);
      if (it != shard.map.end()) {
        // A concurrent Get filled this page after phase A; reuse its
        // frame. Our device read still happened, so the miss stands.
        frame_idx = it->second;
      } else {
        MSV_ASSIGN_OR_RETURN(frame_idx, FindVictim(shard));
        Frame& fill = shard.frames[frame_idx];
        if (fill.valid) {
          shard.map.erase(Key{fill.file_id, fill.page_no});
          ++shard.totals.evictions;
          c_evictions_->Add();
          g_resident_->Set(static_cast<double>(
              resident_.fetch_sub(1, std::memory_order_relaxed) - 1));
          fill.valid = false;
        }
        if (fill.data.size() != page_size_) fill.data.resize(page_size_);
        std::memcpy(fill.data.data(), reqs[k].scratch, reqs[k].got);
        fill.file_id = file_id;
        fill.page_no = page_no;
        fill.length = reqs[k].got;
        fill.pins = 0;
        fill.valid = true;
        shard.map.emplace(key, frame_idx);
        g_resident_->Set(static_cast<double>(
            resident_.fetch_add(1, std::memory_order_relaxed) + 1));
      }
      ++shard.totals.misses;
      c_misses_->Add();
      Frame& f = shard.frames[frame_idx];
      f.tick = ++shard.tick;
      bool first = true;
      for (size_t pos : missed_pos) {
        if (page_nos[pos] != page_no) continue;
        if (!first) {
          ++shard.totals.hits;
          c_hits_->Add();
        }
        first = false;
        ++tls_pool_pages;
        ++f.pins;
        refs[pos] =
            PageRef(this, shard_idx, frame_idx, f.data.data(), f.length);
      }
    }
  }

  *out = std::move(refs);
  return Status::OK();
}

void BufferPool::Clear() {
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    MutexLock lock(shard.mu);
    for (Frame& f : shard.frames) {
      if (f.valid && f.pins == 0) {
        shard.map.erase(Key{f.file_id, f.page_no});
        g_resident_->Set(static_cast<double>(
            resident_.fetch_sub(1, std::memory_order_relaxed) - 1));
        f.valid = false;
      }
    }
  }
}

}  // namespace msv::io
