// Simulated rotating-disk cost model.
//
// The paper's evaluation ran on 15,000 RPM SCSI disks and reports elapsed
// time normalized to the time required to scan the whole relation. To
// reproduce those curve shapes on arbitrary hardware, every file access in
// a benchmark is routed through a DiskDevice that charges modeled time:
//
//   * a discontiguous access pays average seek + rotational latency, then
//     transfer time proportional to length;
//   * an access starting exactly where the previous one ended pays transfer
//     time only (sequential I/O).
//
// Time accumulates on a SimClock owned by the device; benchmark harnesses
// read it between sampling steps. Accesses to *different* files on the same
// device also interfere (the head moves), which is what penalizes the
// one-record-per-random-I/O behaviour of ranked B+-Tree sampling.
//
// Concurrency: a DiskDevice models ONE disk arm, so concurrent accesses
// are serialized under an internal mutex — exactly the physical model.
// Each request observes the head position left by whichever request the
// arm served last (any thread), pays seek/rotation accordingly, and
// advances the shared clock. The clock itself is lock-free so samplers
// and harness threads can poll NowMs() without touching the arm lock.

#ifndef MSV_IO_DISK_MODEL_H_
#define MSV_IO_DISK_MODEL_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "io/env.h"
#include "obs/metrics.h"
#include "util/sync.h"

namespace msv::io {

/// Tunable physical parameters. Defaults approximate the paper's 15k-RPM
/// SCSI drives.
struct DiskModelOptions {
  /// Average head-seek time for a discontiguous access, in milliseconds.
  double seek_ms = 3.5;
  /// Average rotational latency in milliseconds (half a revolution;
  /// 15,000 RPM -> 4 ms/rev -> 2 ms average).
  double rotational_ms = 2.0;
  /// Effective sustained scan rate in MB/s. The paper reports 15 s as
  /// "approximately 4%" of the 20 GB relation scan, implying ~53 MB/s
  /// through the query engine; 50 MB/s is also a typical 2005-era rate.
  double transfer_mb_per_s = 50.0;
  /// Fixed per-request overhead (controller/command), in milliseconds.
  double request_overhead_ms = 0.1;

  Status Validate() const;
};

/// Monotone simulated clock, in milliseconds. Thread-safe: AdvanceMs() is
/// a CAS loop (callers may advance concurrently with the device arm) and
/// NowMs() is a relaxed load, so progress polling never blocks I/O.
class SimClock {
 public:
  double NowMs() const { return now_ms_.load(std::memory_order_relaxed); }
  void AdvanceMs(double ms) {
    double cur = now_ms_.load(std::memory_order_relaxed);
    while (!now_ms_.compare_exchange_weak(cur, cur + ms,
                                          std::memory_order_relaxed)) {
    }
  }
  void Reset() { now_ms_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> now_ms_{0.0};
};

/// Aggregate I/O counters for a device.
struct DiskStats {
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t read_bytes = 0;
  uint64_t written_bytes = 0;
  uint64_t seeks = 0;           ///< discontiguous accesses (paid seek+rot)
  uint64_t sequential_ios = 0;  ///< contiguous accesses (transfer only)
  /// Total modeled device-busy time in integer microseconds. Accumulated
  /// per access with the same rounding as the io.disk.busy_us registry
  /// counter, so struct totals and traced span deltas compare exactly.
  uint64_t busy_us = 0;
  /// Coalesced multi-page accesses charged through AccessRun(), and the
  /// total pages they carried. batched_pages / batched_accesses is the
  /// coalesce ratio; each batched access also counts once in reads/seeks/
  /// sequential_ios above, so the per-access families stay reconciled.
  uint64_t batched_accesses = 0;
  uint64_t batched_pages = 0;

  DiskStats operator-(const DiskStats& b) const {
    return DiskStats{reads - b.reads,
                     writes - b.writes,
                     read_bytes - b.read_bytes,
                     written_bytes - b.written_bytes,
                     seeks - b.seeks,
                     sequential_ios - b.sequential_ios,
                     busy_us - b.busy_us,
                     batched_accesses - b.batched_accesses,
                     batched_pages - b.batched_pages};
  }
};

/// One simulated disk: a clock, a head position, and stats. Every file
/// opened through a SimEnv bound to this device charges time here.
///
/// Every access is also published to the process-wide metric registry
/// (io.disk.* counters, io.disk.access_us histogram), which is what the
/// tracer and the exporters read.
///
/// Thread-safe: Access() serializes on the arm mutex (see file comment),
/// and the stats accessors snapshot under the same mutex.
class DiskDevice {
 public:
  explicit DiskDevice(DiskModelOptions options = {});

  /// Charges the model cost of an access of `len` bytes at absolute device
  /// position `pos` and advances the head. Safe from any thread; requests
  /// racing for the arm are served in lock-acquisition order.
  void Access(uint64_t pos, uint64_t len, bool is_write);

  /// Charges one coalesced access covering `pages` logically distinct
  /// requests that are physically contiguous: the arm pays at most one
  /// seek + rotation for the whole run, then `len` bytes of transfer —
  /// the entire point of batched I/O under a seek-dominated model. Also
  /// records io.batch.* metrics (accesses, pages, pages-per-access
  /// histogram) and the DiskStats batched_* fields; Access() never does.
  void AccessRun(uint64_t pos, uint64_t len, uint64_t pages, bool is_write);

  /// Model time to read `bytes` sequentially from a cold start; the
  /// normalization denominator for all paper figures.
  double SequentialScanMs(uint64_t bytes) const;

  SimClock& clock() { return clock_; }
  const SimClock& clock() const { return clock_; }
  /// Counters accumulated since the last ResetStats() (member-wise delta
  /// against the reset baseline). Consistent snapshot under the arm lock.
  DiskStats stats() const;
  /// Counters since device construction; never reset.
  DiskStats total_stats() const;
  const DiskModelOptions& options() const { return options_; }

  /// Starts a new stats epoch. Totals stay monotone — the baseline is
  /// snapshotted instead of zeroing anything, so increments concurrent
  /// with the reset are never discarded (the old `stats_ = DiskStats()`
  /// footgun), and the global registry epoch is advanced in step.
  void ResetStats();

 private:
  DiskModelOptions options_;
  SimClock clock_;

  /// The arm lock: serializes Access() and guards head/stat state below.
  mutable Mutex mu_;
  DiskStats totals_ MSV_GUARDED_BY(mu_);
  DiskStats baseline_ MSV_GUARDED_BY(mu_);
  uint64_t head_pos_ MSV_GUARDED_BY(mu_) = 0;
  bool head_valid_ MSV_GUARDED_BY(mu_) = false;

  /// Shared body of Access()/AccessRun(); acquires the arm lock. `pages`
  /// is 0 for plain accesses (skips the io.batch.* family entirely).
  void AccessImpl(uint64_t pos, uint64_t len, uint64_t pages, bool is_write);

  // Registry series shared by every DiskDevice (process-wide totals).
  obs::Counter* c_reads_;
  obs::Counter* c_writes_;
  obs::Counter* c_read_bytes_;
  obs::Counter* c_written_bytes_;
  obs::Counter* c_seeks_;
  obs::Counter* c_sequential_;
  obs::Counter* c_busy_us_;
  obs::LogHistogram* h_access_us_;
  obs::Counter* c_batch_accesses_;
  obs::Counter* c_batch_pages_;
  obs::LogHistogram* h_batch_pages_;
  obs::Gauge* g_clock_ms_;
};

/// Modeled disk-busy microseconds charged by accesses issued from the
/// CALLING thread, across all DiskDevices, since thread start. Every
/// access is attributed to exactly one thread, so per-query deltas taken
/// around a thread's own I/O sum exactly to the devices' busy_us even
/// when other threads are hammering the same arm — the race-free
/// replacement for delta-ing the global io.disk.busy_us counter.
uint64_t ThreadDiskBusyUs();

/// An Env decorator: files opened through it behave exactly like the inner
/// Env's files but charge time on the given device. Each distinct file is
/// assigned a disjoint region of the simulated platter so that interleaved
/// access to two files produces seeks, as on a real disk.
std::unique_ptr<Env> NewSimEnv(Env* inner, std::shared_ptr<DiskDevice> device);

}  // namespace msv::io

#endif  // MSV_IO_DISK_MODEL_H_
