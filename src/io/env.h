// Storage environment abstraction (RocksDB-style Env).
//
// All file access in the library goes through Env/File so that every index
// structure can run unchanged against:
//   * MemEnv    - an in-process byte-vector filesystem (fast, deterministic;
//                 the default for tests and simulated-disk benchmarks), or
//   * PosixEnv  - real files on the host filesystem.
//
// The simulated-disk benchmark harness wraps either Env with SimEnv (see
// disk_model.h) to charge modeled seek/rotation/transfer time per access.

#ifndef MSV_IO_ENV_H_
#define MSV_IO_ENV_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace msv::io {

/// One positional read inside a File::ReadBatch call. `got` is filled by
/// the implementation with the number of bytes actually read (short only
/// at end-of-file, matching File::Read).
struct ReadRequest {
  uint64_t offset = 0;
  size_t n = 0;
  char* scratch = nullptr;
  size_t got = 0;
};

/// A random-access file supporting positional reads/writes and append.
/// The library's implementations (MemEnv, PosixEnv, SimEnv) are safe for
/// concurrent use: positional reads may proceed in parallel and writes are
/// serialized against them. Third-party implementations should match that
/// contract before handing files to concurrent samplers.
class File {
 public:
  virtual ~File() = default;

  /// Reads up to `n` bytes starting at `offset` into `scratch`. Returns the
  /// number of bytes actually read (short only at end-of-file).
  virtual Result<size_t> Read(uint64_t offset, size_t n, char* scratch) = 0;

  /// Reads `count` positional requests. Each request's `got` is set exactly
  /// as a standalone Read would set it (short only at end-of-file).
  ///
  /// Implementations treat a maximal run of requests that is contiguous *in
  /// array order* (reqs[j].offset == reqs[j-1].offset + reqs[j-1].n) as one
  /// underlying device access: SimEnv charges one seek for the whole run,
  /// FaultInjectionEnv consumes one op index per run, PosixEnv issues one
  /// preadv(2). Callers wanting coalescing should therefore sort requests
  /// by offset before calling. The default implementation loops over Read.
  virtual Status ReadBatch(ReadRequest* reqs, size_t count);

  /// Writes `n` bytes at `offset`, extending the file if needed.
  virtual Status Write(uint64_t offset, const char* data, size_t n) = 0;

  /// Appends `n` bytes at the current end of file.
  virtual Status Append(const char* data, size_t n) = 0;

  /// Current file size in bytes.
  virtual Result<uint64_t> Size() const = 0;

  /// Truncates or extends the file to exactly `size` bytes.
  virtual Status Truncate(uint64_t size) = 0;

  /// Flushes this file's data to stable storage. Durability contract per
  /// backend (see DESIGN.md §9):
  ///   * MemEnv   - no-op (memory is the storage);
  ///   * PosixEnv - fsync(2) on the descriptor, so the data survives a
  ///     crash — but a *newly created* file's directory entry does not
  ///     until Env::SyncDir() is also called;
  ///   * FaultInjectionEnv - marks the current contents as surviving a
  ///     simulated crash (DropUnsyncedData).
  virtual Status Sync() = 0;

  /// Reads exactly `n` bytes or fails with IOError.
  Status ReadExact(uint64_t offset, size_t n, char* scratch);
};

/// Factory and namespace for files.
class Env {
 public:
  virtual ~Env() = default;

  /// Opens `name`; creates it when `create` is true, otherwise fails with
  /// NotFound for missing files. An existing file is opened as-is (never
  /// truncated).
  virtual Result<std::unique_ptr<File>> OpenFile(const std::string& name,
                                                 bool create) = 0;

  virtual Status DeleteFile(const std::string& name) = 0;

  /// Atomically replaces `to` (if any) with `from`. `from` must exist.
  virtual Status RenameFile(const std::string& from,
                            const std::string& to) = 0;
  /// Returns true iff `name` exists. Errors other than "not found" (for
  /// PosixEnv: EACCES, EMFILE, ...) surface as a Status, never as `false`.
  virtual Result<bool> FileExists(const std::string& name) = 0;
  virtual Result<std::vector<std::string>> ListFiles() = 0;

  /// Flushes directory metadata to stable storage. After a file is created
  /// or renamed, its directory entry is only crash-durable once SyncDir()
  /// returns OK (the atomic-build protocol is: write `<name>.tmp`, Sync()
  /// it, RenameFile() to `<name>`, SyncDir()). Backends without a real
  /// directory (MemEnv) inherit this no-op default.
  virtual Status SyncDir() { return Status::OK(); }

  /// Process-wide in-memory environment (never nullptr).
  static Env* Memory();
};

/// Creates a fresh, private in-memory environment.
std::unique_ptr<Env> NewMemEnv();

/// Creates an environment backed by the host filesystem rooted at `root`
/// (file names are interpreted relative to it). The directory must exist.
std::unique_ptr<Env> NewPosixEnv(std::string root);

}  // namespace msv::io

#endif  // MSV_IO_ENV_H_
