#include "relation/workload.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace msv::relation {

WorkloadGenerator::WorkloadGenerator(std::vector<Domain> domains,
                                     uint64_t seed)
    : domains_(std::move(domains)), rng_(seed) {
  MSV_CHECK(!domains_.empty());
}

sampling::RangeQuery WorkloadGenerator::Query(double selectivity,
                                              size_t dims) {
  MSV_CHECK(selectivity > 0.0 && selectivity <= 1.0);
  MSV_CHECK(dims >= 1 && dims <= domains_.size());
  // Per-dimension window fraction: the d-th root of the volume fraction.
  double side = std::pow(selectivity, 1.0 / static_cast<double>(dims));
  sampling::RangeQuery q;
  q.dims = dims;
  for (size_t d = 0; d < dims; ++d) {
    double span = domains_[d].hi - domains_[d].lo;
    double width = side * span;
    double start =
        domains_[d].lo + rng_.NextDouble() * (span - width);
    q.bounds[d] = sampling::Interval{start, start + width};
  }
  return q;
}

std::vector<sampling::RangeQuery> WorkloadGenerator::Queries(
    double selectivity, size_t dims, size_t n) {
  std::vector<sampling::RangeQuery> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) out.push_back(Query(selectivity, dims));
  return out;
}

Result<uint64_t> CountMatches(const storage::HeapFile& file,
                              const storage::RecordLayout& layout,
                              const sampling::RangeQuery& query) {
  uint64_t count = 0;
  auto scanner = file.NewScanner();
  for (;;) {
    MSV_ASSIGN_OR_RETURN(const char* rec, scanner.Next());
    if (rec == nullptr) break;
    if (query.Matches(layout, rec)) ++count;
  }
  return count;
}

Result<std::vector<uint64_t>> CollectMatchingRowIds(
    const storage::HeapFile& file, const storage::RecordLayout& layout,
    const sampling::RangeQuery& query) {
  std::vector<uint64_t> ids;
  auto scanner = file.NewScanner();
  for (;;) {
    MSV_ASSIGN_OR_RETURN(const char* rec, scanner.Next());
    if (rec == nullptr) break;
    if (query.Matches(layout, rec)) {
      ids.push_back(storage::SaleRecord::DecodeFrom(rec).row_id);
    }
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

}  // namespace msv::relation
