// Query workload generation at a target selectivity.
//
// The paper's experiments sample from "10 different range selection
// predicates" at selectivities 0.25%, 2.5% and 25%. With uniformly
// distributed keys a range covering fraction f of the key domain matches
// (in expectation) fraction f of the records; the generator places such a
// window uniformly at random inside the domain. For 2-d queries each side
// covers sqrt(f) of its dimension so the rectangle's area fraction is f.

#ifndef MSV_RELATION_WORKLOAD_H_
#define MSV_RELATION_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "sampling/range_query.h"
#include "storage/heap_file.h"
#include "storage/record.h"
#include "util/random.h"
#include "util/result.h"

namespace msv::relation {

struct Domain {
  double lo = 0.0;
  double hi = 1.0;
};

/// Generates range queries of a given selectivity over uniform key domains.
class WorkloadGenerator {
 public:
  /// One Domain per key dimension.
  WorkloadGenerator(std::vector<Domain> domains, uint64_t seed);

  /// A query whose window covers fraction `selectivity` of the domain
  /// volume, placed uniformly at random, using the first `dims` dimensions.
  sampling::RangeQuery Query(double selectivity, size_t dims);

  /// A batch of `n` such queries (the paper averages over 10).
  std::vector<sampling::RangeQuery> Queries(double selectivity, size_t dims,
                                            size_t n);

 private:
  std::vector<Domain> domains_;
  Pcg64 rng_;
};

/// Exact number of records in `file` matching `query` (full scan; used to
/// verify samplers and to report true selectivities).
Result<uint64_t> CountMatches(const storage::HeapFile& file,
                              const storage::RecordLayout& layout,
                              const sampling::RangeQuery& query);

/// Row-ids of all matching records, sorted (test oracle).
Result<std::vector<uint64_t>> CollectMatchingRowIds(
    const storage::HeapFile& file, const storage::RecordLayout& layout,
    const sampling::RangeQuery& query);

}  // namespace msv::relation

#endif  // MSV_RELATION_WORKLOAD_H_
