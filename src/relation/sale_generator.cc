#include "relation/sale_generator.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <utility>
#include <vector>

#include "storage/heap_file.h"
#include "util/random.h"

namespace msv::relation {

Status GenerateSaleRelation(io::Env* env, const std::string& name,
                            const SaleGenOptions& options) {
  MSV_RETURN_IF_ERROR(options.Validate());
  MSV_ASSIGN_OR_RETURN(
      std::unique_ptr<storage::HeapFileWriter> writer,
      storage::HeapFileWriter::Create(env, name, storage::SaleRecord::kSize));

  Pcg64 rng(options.seed);
  char buf[storage::SaleRecord::kSize];
  // Cluster centers/widths for kClustered (deterministic given the seed).
  std::vector<std::pair<double, double>> clusters;
  if (options.day_distribution == DayDistribution::kClustered) {
    Pcg64 crng(options.seed ^ 0xc105e72aULL);
    double span = options.day_max - options.day_min;
    for (uint32_t c = 0; c < options.clusters; ++c) {
      clusters.emplace_back(options.day_min + crng.NextDouble() * span,
                            span * 0.005 * (1.0 + crng.NextDouble()));
    }
  }
  auto draw_day = [&]() {
    switch (options.day_distribution) {
      case DayDistribution::kUniform:
        return rng.DoubleInRange(options.day_min, options.day_max);
      case DayDistribution::kZipfian: {
        // Inverse-CDF of a continuous power law on (0, 1]: u^(1/(1-theta))
        // concentrates mass near day_min for theta in (0, 1).
        double u = rng.NextDouble();
        double x = std::pow(u, 1.0 / (1.0 - options.zipf_theta));
        return options.day_min + x * (options.day_max - options.day_min);
      }
      case DayDistribution::kClustered: {
        const auto& [center, width] =
            clusters[rng.Below(clusters.size())];
        // Triangular-ish bump around the center, clamped to the domain.
        double offset = (rng.NextDouble() + rng.NextDouble() - 1.0) * width;
        return std::clamp(center + offset, options.day_min,
                          std::nextafter(options.day_max, options.day_min));
      }
    }
    return options.day_min;
  };
  for (uint64_t i = 0; i < options.num_records; ++i) {
    storage::SaleRecord rec;
    rec.day = draw_day();
    rec.amount = rng.DoubleInRange(options.amount_min, options.amount_max);
    rec.cust = rng.Below(1'000'000);
    rec.part = rng.Below(200'000);
    rec.supp = rng.Below(10'000);
    rec.row_id = i;
    rec.EncodeTo(buf);
    MSV_RETURN_IF_ERROR(writer->Append(buf));
  }
  return writer->Finish();
}

}  // namespace msv::relation
