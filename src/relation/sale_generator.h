// Synthetic SALE relation generator (the paper's evaluation data).
//
// Experiment 1 uses a 1-d workload over SALE.DAY; Experiment 2 draws
// (DAY, AMOUNT) from a bivariate uniform distribution. Records are written
// to a heap file in key-random order (generation order is unrelated to key
// order, as in a real fact table).

#ifndef MSV_RELATION_SALE_GENERATOR_H_
#define MSV_RELATION_SALE_GENERATOR_H_

#include <cstdint>
#include <string>

#include "io/env.h"
#include "storage/record.h"
#include "util/result.h"

namespace msv::relation {

/// Distribution of the DAY attribute (AMOUNT stays uniform, matching the
/// paper's bivariate-uniform 2-d experiment).
enum class DayDistribution {
  kUniform,    ///< the paper's setting
  kZipfian,    ///< heavy skew towards small days (rank-frequency ~ 1/rank)
  kClustered,  ///< a few dense bursts (e.g. seasonal sales spikes)
};

struct SaleGenOptions {
  uint64_t num_records = 0;
  uint64_t seed = 42;

  /// Key domains; both attributes are drawn from [min, max).
  double day_min = 0.0;
  double day_max = 100000.0;
  double amount_min = 0.0;
  double amount_max = 10000.0;

  DayDistribution day_distribution = DayDistribution::kUniform;
  /// kZipfian: skew exponent; kClustered: number of clusters.
  double zipf_theta = 0.8;
  uint32_t clusters = 8;

  Status Validate() const {
    if (num_records == 0) {
      return Status::InvalidArgument("num_records must be positive");
    }
    if (day_max <= day_min || amount_max <= amount_min) {
      return Status::InvalidArgument("empty key domain");
    }
    return Status::OK();
  }
};

/// Generates `options.num_records` SALE records into heap file `name`.
/// row_id is the generation index (0-based) and is unique — tests use it to
/// identify records.
Status GenerateSaleRelation(io::Env* env, const std::string& name,
                            const SaleGenOptions& options);

}  // namespace msv::relation

#endif  // MSV_RELATION_SALE_GENERATOR_H_
