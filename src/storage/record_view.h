// Zero-copy views over densely packed fixed-size records, and the
// compiled field accessor that replaces per-record std::function /
// virtual dispatch on the aggregation hot path.
//
// A RecordSpan is {ptr, count}: `count` records of a known record_size
// laid out back to back, typically inside a pinned buffer-pool frame, a
// leaf section, or an arena slab. It never owns its bytes — lifetime is
// the caller's contract (the combine engine ties span lifetime to its
// per-query arena; see DESIGN.md §15).
//
// A FieldAccessor is the "compiled" form of the aggregation expressions
// the MSVQL executor used to pass around as std::function<double(const
// char*)>: an offset plus a kind enum, fully inlineable, so consuming a
// whole SampleBatch is a tight load loop instead of one indirect call
// per record.

#ifndef MSV_STORAGE_RECORD_VIEW_H_
#define MSV_STORAGE_RECORD_VIEW_H_

#include <cstddef>
#include <cstdint>

#include "util/coding.h"

namespace msv::storage {

/// A non-owning view of `count` densely packed records.
struct RecordSpan {
  const char* data = nullptr;
  size_t count = 0;

  bool empty() const { return count == 0; }
};

/// Inlineable record-field extractor: offset + kind, no indirection.
struct FieldAccessor {
  enum class Kind : uint8_t {
    kDouble = 0,   ///< IEEE-754 binary64 at `offset`
    kUint64 = 1,   ///< little-endian u64 at `offset`, converted to double
    kConstOne = 2  ///< ignores the record; yields 1.0 (COUNT-style)
  };

  Kind kind = Kind::kConstOne;
  uint32_t offset = 0;

  static FieldAccessor Double(size_t off) {
    return FieldAccessor{Kind::kDouble, static_cast<uint32_t>(off)};
  }
  static FieldAccessor Uint64(size_t off) {
    return FieldAccessor{Kind::kUint64, static_cast<uint32_t>(off)};
  }
  static FieldAccessor ConstOne() { return FieldAccessor{}; }

  double Load(const char* rec) const {
    switch (kind) {
      case Kind::kDouble:
        return DecodeDouble(rec + offset);
      case Kind::kUint64:
        return static_cast<double>(DecodeFixed64(rec + offset));
      case Kind::kConstOne:
        return 1.0;
    }
    return 0.0;
  }

  /// Raw u64 load (GROUP BY keys). Only meaningful for kUint64; kDouble
  /// truncates through double the same way the std::function path's
  /// static_cast<uint64_t>(Value(...)) did.
  uint64_t LoadU64(const char* rec) const {
    switch (kind) {
      case Kind::kUint64:
        return DecodeFixed64(rec + offset);
      case Kind::kDouble:
        return static_cast<uint64_t>(DecodeDouble(rec + offset));
      case Kind::kConstOne:
        return 1;
    }
    return 0;
  }
};

}  // namespace msv::storage

#endif  // MSV_STORAGE_RECORD_VIEW_H_
