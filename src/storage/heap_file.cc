#include "storage/heap_file.h"

#include <algorithm>
#include <cstring>

#include "util/coding.h"
#include "util/logging.h"

namespace msv::storage {

namespace {
constexpr uint32_t kFormatVersion = 1;

void WriteHeader(char* dst, size_t record_size, uint64_t count) {
  std::memset(dst, 0, kHeapFileHeaderSize);
  EncodeFixed64(dst, kHeapFileMagic);
  EncodeFixed32(dst + 8, kFormatVersion);
  EncodeFixed32(dst + 12, static_cast<uint32_t>(record_size));
  EncodeFixed64(dst + 16, count);
}
}  // namespace

// ---------------------------------------------------------------------------
// HeapFileWriter
// ---------------------------------------------------------------------------

Result<std::unique_ptr<HeapFileWriter>> HeapFileWriter::Create(
    io::Env* env, const std::string& name, size_t record_size,
    size_t buffer_bytes) {
  if (record_size == 0) {
    return Status::InvalidArgument("record_size must be positive");
  }
  MSV_ASSIGN_OR_RETURN(std::unique_ptr<io::File> file,
                       env->OpenFile(name, /*create=*/true));
  MSV_RETURN_IF_ERROR(file->Truncate(0));
  // Reserve the header now; the final header (with the true count) is
  // rewritten in Finish().
  char header[kHeapFileHeaderSize];
  WriteHeader(header, record_size, 0);
  MSV_RETURN_IF_ERROR(file->Write(0, header, sizeof(header)));
  return std::unique_ptr<HeapFileWriter>(
      new HeapFileWriter(std::move(file), record_size, buffer_bytes));
}

HeapFileWriter::HeapFileWriter(std::unique_ptr<io::File> file,
                               size_t record_size, size_t buffer_bytes)
    : file_(std::move(file)),
      record_size_(record_size),
      write_offset_(kHeapFileHeaderSize) {
  size_t cap = std::max(buffer_bytes, record_size);
  cap -= cap % record_size;  // whole records only
  buffer_.resize(cap);
}

Status HeapFileWriter::Append(const char* record) {
  MSV_DCHECK(!finished_);
  if (buffered_ + record_size_ > buffer_.size()) {
    MSV_RETURN_IF_ERROR(FlushBuffer());
  }
  std::memcpy(buffer_.data() + buffered_, record, record_size_);
  buffered_ += record_size_;
  ++count_;
  return Status::OK();
}

Status HeapFileWriter::FlushBuffer() {
  if (buffered_ == 0) return Status::OK();
  MSV_RETURN_IF_ERROR(file_->Write(write_offset_, buffer_.data(), buffered_));
  write_offset_ += buffered_;
  buffered_ = 0;
  return Status::OK();
}

Status HeapFileWriter::Finish() {
  MSV_DCHECK(!finished_);
  MSV_RETURN_IF_ERROR(FlushBuffer());
  char header[kHeapFileHeaderSize];
  WriteHeader(header, record_size_, count_);
  MSV_RETURN_IF_ERROR(file_->Write(0, header, sizeof(header)));
  MSV_RETURN_IF_ERROR(file_->Sync());
  finished_ = true;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// HeapFile
// ---------------------------------------------------------------------------

Result<std::unique_ptr<HeapFile>> HeapFile::Open(io::Env* env,
                                                 const std::string& name) {
  MSV_ASSIGN_OR_RETURN(std::unique_ptr<io::File> file,
                       env->OpenFile(name, /*create=*/false));
  char header[kHeapFileHeaderSize];
  MSV_RETURN_IF_ERROR(file->ReadExact(0, sizeof(header), header));
  if (DecodeFixed64(header) != kHeapFileMagic) {
    return Status::Corruption("bad heap file magic in " + name);
  }
  uint32_t version = DecodeFixed32(header + 8);
  if (version != kFormatVersion) {
    return Status::Corruption("unsupported heap file version " +
                              std::to_string(version));
  }
  size_t record_size = DecodeFixed32(header + 12);
  uint64_t count = DecodeFixed64(header + 16);
  if (record_size == 0) {
    return Status::Corruption("zero record size in " + name);
  }
  MSV_ASSIGN_OR_RETURN(uint64_t size, file->Size());
  if (size < kHeapFileHeaderSize + count * record_size) {
    return Status::Corruption("heap file " + name + " shorter than header claims");
  }
  return std::unique_ptr<HeapFile>(
      new HeapFile(std::move(file), record_size, count));
}

HeapFile::HeapFile(std::unique_ptr<io::File> file, size_t record_size,
                   uint64_t count)
    : file_(std::move(file)), record_size_(record_size), count_(count) {}

uint64_t HeapFile::file_bytes() const {
  return kHeapFileHeaderSize + count_ * record_size_;
}

Status HeapFile::ReadRecord(uint64_t index, char* out) const {
  if (index >= count_) {
    return Status::OutOfRange("record index " + std::to_string(index) +
                              " >= count " + std::to_string(count_));
  }
  return file_->ReadExact(kHeapFileHeaderSize + index * record_size_,
                          record_size_, out);
}

HeapFile::Scanner HeapFile::NewScanner(size_t chunk_bytes,
                                       bool readahead) const {
  size_t chunk_records = std::max<size_t>(1, chunk_bytes / record_size_);
  return Scanner(this, chunk_records, readahead);
}

HeapFile::Scanner::Scanner(const HeapFile* file, size_t chunk_records,
                           bool readahead)
    : file_(file), chunk_capacity_(chunk_records), readahead_(readahead) {
  chunk_.resize((readahead_ ? 2 : 1) * chunk_capacity_ * file_->record_size_);
}

Result<const char*> HeapFile::Scanner::Next() {
  if (pos_ >= file_->count_) return static_cast<const char*>(nullptr);
  if (pos_ < chunk_start_ || pos_ >= chunk_start_ + chunk_count_ ||
      chunk_count_ == 0) {
    const size_t rec = file_->record_size_;
    const uint64_t base = kHeapFileHeaderSize + pos_ * rec;
    if (readahead_) {
      // Refill the current block and its lookahead with one batched
      // read; the two requests are adjacent, so the device serves them
      // as a single coalesced access (one seek for both blocks).
      size_t want = static_cast<size_t>(
          std::min<uint64_t>(2 * chunk_capacity_, file_->count_ - pos_));
      size_t first = std::min(want, chunk_capacity_);
      io::ReadRequest reqs[2];
      reqs[0].offset = base;
      reqs[0].n = first * rec;
      reqs[0].scratch = chunk_.data();
      size_t nreqs = 1;
      if (want > first) {
        reqs[1].offset = base + first * rec;
        reqs[1].n = (want - first) * rec;
        reqs[1].scratch = chunk_.data() + first * rec;
        nreqs = 2;
      }
      MSV_RETURN_IF_ERROR(file_->file_->ReadBatch(reqs, nreqs));
      for (size_t i = 0; i < nreqs; ++i) {
        if (reqs[i].got != reqs[i].n) {
          return Status::IOError(
              "short read: wanted " + std::to_string(reqs[i].n) +
              " bytes at offset " + std::to_string(reqs[i].offset) +
              ", got " + std::to_string(reqs[i].got));
        }
      }
      chunk_start_ = static_cast<size_t>(pos_);
      chunk_count_ = want;
    } else {
      // Refill starting at pos_.
      size_t want = static_cast<size_t>(
          std::min<uint64_t>(chunk_capacity_, file_->count_ - pos_));
      MSV_RETURN_IF_ERROR(
          file_->file_->ReadExact(base, want * rec, chunk_.data()));
      chunk_start_ = static_cast<size_t>(pos_);
      chunk_count_ = want;
    }
  }
  const char* rec =
      chunk_.data() + (pos_ - chunk_start_) * file_->record_size_;
  ++pos_;
  return rec;
}

Status AppendToHeapFile(io::Env* env, const std::string& name,
                        const char* records, size_t count) {
  MSV_ASSIGN_OR_RETURN(std::unique_ptr<io::File> file,
                       env->OpenFile(name, /*create=*/false));
  char header[kHeapFileHeaderSize];
  MSV_RETURN_IF_ERROR(file->ReadExact(0, sizeof(header), header));
  if (DecodeFixed64(header) != kHeapFileMagic) {
    return Status::Corruption("bad heap file magic in " + name);
  }
  size_t record_size = DecodeFixed32(header + 12);
  uint64_t existing = DecodeFixed64(header + 16);
  MSV_RETURN_IF_ERROR(
      file->Write(kHeapFileHeaderSize + existing * record_size, records,
                  count * record_size));
  EncodeFixed64(header + 16, existing + count);
  MSV_RETURN_IF_ERROR(file->Write(0, header, sizeof(header)));
  return file->Sync();
}

}  // namespace msv::storage
