#include "storage/record.h"

namespace msv::storage {

Status RecordLayout::Validate() const {
  if (record_size == 0) {
    return Status::InvalidArgument("record_size must be positive");
  }
  if (key_offsets.empty()) {
    return Status::InvalidArgument("at least one key dimension required");
  }
  if (key_offsets.size() > kMaxKeyDims) {
    return Status::InvalidArgument("too many key dimensions");
  }
  for (size_t off : key_offsets) {
    if (off + sizeof(double) > record_size) {
      return Status::InvalidArgument("key offset exceeds record size");
    }
  }
  return Status::OK();
}

}  // namespace msv::storage
