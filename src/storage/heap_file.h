// HeapFile: an unordered sequence of fixed-size records in one file.
//
// Format:
//   bytes [0, 64)   header: magic, version, record size, record count
//   bytes [64, ...) records, densely packed
//
// Heap files are the input/output unit of the external sorter and the
// storage format of the randomly-permuted-file baseline. The scanner reads
// in large sequential chunks so a full scan costs near the device's
// sequential bandwidth, as in the paper's baseline.

#ifndef MSV_STORAGE_HEAP_FILE_H_
#define MSV_STORAGE_HEAP_FILE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "io/env.h"
#include "util/result.h"

namespace msv::storage {

/// Append-only writer; call Finish() to persist the header.
class HeapFileWriter {
 public:
  /// Creates (or truncates) `name` in `env` for records of `record_size`
  /// bytes. `buffer_bytes` controls write batching.
  static Result<std::unique_ptr<HeapFileWriter>> Create(
      io::Env* env, const std::string& name, size_t record_size,
      size_t buffer_bytes = 1 << 20);

  /// Appends one record of exactly record_size bytes.
  Status Append(const char* record);

  /// Flushes buffered records and writes the final header. The writer must
  /// not be used afterwards.
  Status Finish();

  uint64_t records_written() const { return count_; }
  size_t record_size() const { return record_size_; }

 private:
  HeapFileWriter(std::unique_ptr<io::File> file, size_t record_size,
                 size_t buffer_bytes);
  Status FlushBuffer();

  std::unique_ptr<io::File> file_;
  size_t record_size_;
  std::vector<char> buffer_;
  size_t buffered_ = 0;
  uint64_t count_ = 0;
  uint64_t write_offset_;
  bool finished_ = false;
};

/// Read access to a finished heap file.
class HeapFile {
 public:
  /// Opens an existing heap file and validates its header.
  static Result<std::unique_ptr<HeapFile>> Open(io::Env* env,
                                                const std::string& name);

  uint64_t record_count() const { return count_; }
  size_t record_size() const { return record_size_; }
  /// Total size in bytes including the header (scan-time denominator).
  uint64_t file_bytes() const;

  /// Reads record `index` into `out` (record_size bytes).
  Status ReadRecord(uint64_t index, char* out) const;

  /// Sequential scanner with a large read-ahead buffer.
  class Scanner {
   public:
    /// Returns a pointer to the next record, or nullptr at end. The pointer
    /// is valid until the next call.
    Result<const char*> Next();

    /// Records returned so far.
    uint64_t position() const { return pos_; }

   private:
    friend class HeapFile;
    Scanner(const HeapFile* file, size_t chunk_records, bool readahead);

    const HeapFile* file_;
    std::vector<char> chunk_;
    uint64_t pos_ = 0;        // next record index in the file
    size_t chunk_start_ = 0;  // record index of chunk_[0]
    size_t chunk_count_ = 0;  // records currently in chunk_
    size_t chunk_capacity_;   // records per chunk
    bool readahead_;          // double-buffered refills (see NewScanner)
  };

  /// Creates a scanner reading `chunk_bytes` per I/O (rounded to whole
  /// records). With `readahead`, each refill fetches *two* chunk-sized
  /// blocks as one batched (adjacent, hence coalesced) read — the
  /// double-buffering of the TPMMS merge phase. Under the synchronous
  /// disk model an overlap of fetch and drain cannot be expressed, so
  /// the benefit manifests as half the refill seeks at twice the buffer
  /// memory (2 * chunk_bytes per scanner); callers opting in should
  /// budget accordingly.
  Scanner NewScanner(size_t chunk_bytes = 4 << 20,
                     bool readahead = false) const;

 private:
  HeapFile(std::unique_ptr<io::File> file, size_t record_size,
           uint64_t count);

  std::unique_ptr<io::File> file_;
  size_t record_size_;
  uint64_t count_;
};

/// Appends `count` records to an existing heap file, updating its header
/// so readers opened afterwards see them. Used by differential files.
Status AppendToHeapFile(io::Env* env, const std::string& name,
                        const char* records, size_t count);

/// Header constants shared with tests.
inline constexpr uint64_t kHeapFileMagic = 0x3153564d50414548ULL;  // "HEAPMSV1"
inline constexpr size_t kHeapFileHeaderSize = 64;

}  // namespace msv::storage

#endif  // MSV_STORAGE_HEAP_FILE_H_
