// Fixed-size record layout.
//
// The paper's synthetic SALE relation uses 100-byte records; the library
// works with any fixed record size via RecordLayout, which also names where
// the (up to kMaxKeyDims) double-valued key attributes live inside the
// record. Key dimension 0 is the primary range attribute (SALE.DAY);
// dimension 1 is SALE.AMOUNT for the two-dimensional experiments.

#ifndef MSV_STORAGE_RECORD_H_
#define MSV_STORAGE_RECORD_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/coding.h"
#include "util/status.h"

namespace msv::storage {

/// Maximum number of indexed key dimensions supported by the k-d ACE Tree
/// and the R-Tree.
inline constexpr size_t kMaxKeyDims = 4;

/// Describes a fixed-size record type: total byte size and the offsets of
/// its double-encoded key attributes.
struct RecordLayout {
  size_t record_size = 0;
  std::vector<size_t> key_offsets;  // one per key dimension

  size_t key_dims() const { return key_offsets.size(); }

  /// Key value of dimension `dim` for record bytes `rec`.
  double Key(const char* rec, size_t dim) const {
    return DecodeDouble(rec + key_offsets[dim]);
  }

  /// Writes key value of dimension `dim` into record bytes `rec`.
  void SetKey(char* rec, size_t dim, double value) const {
    EncodeDouble(rec + key_offsets[dim], value);
  }

  Status Validate() const;
};

/// The paper's SALE relation: SALE(DAY, AMOUNT, CUST, PART, SUPP) padded to
/// exactly 100 bytes, with DAY and AMOUNT stored as doubles so they can
/// serve as index keys.
struct SaleRecord {
  static constexpr size_t kSize = 100;
  static constexpr size_t kDayOffset = 0;
  static constexpr size_t kAmountOffset = 8;
  static constexpr size_t kCustOffset = 16;
  static constexpr size_t kPartOffset = 24;
  static constexpr size_t kSuppOffset = 32;
  static constexpr size_t kRowIdOffset = 40;
  // bytes [48, 100) are opaque payload

  double day = 0.0;
  double amount = 0.0;
  uint64_t cust = 0;
  uint64_t part = 0;
  uint64_t supp = 0;
  uint64_t row_id = 0;  ///< unique id assigned at generation; test oracle

  /// Layout with DAY as the single indexed attribute.
  static RecordLayout Layout1D() {
    return RecordLayout{kSize, {kDayOffset}};
  }
  /// Layout indexing (DAY, AMOUNT).
  static RecordLayout Layout2D() {
    return RecordLayout{kSize, {kDayOffset, kAmountOffset}};
  }

  void EncodeTo(char* dst) const {
    EncodeDouble(dst + kDayOffset, day);
    EncodeDouble(dst + kAmountOffset, amount);
    EncodeFixed64(dst + kCustOffset, cust);
    EncodeFixed64(dst + kPartOffset, part);
    EncodeFixed64(dst + kSuppOffset, supp);
    EncodeFixed64(dst + kRowIdOffset, row_id);
    // Deterministic payload derived from row_id so corruption is
    // detectable in tests.
    for (size_t i = 48; i < kSize; ++i) {
      dst[i] = static_cast<char>((row_id + i) & 0xff);
    }
  }

  static SaleRecord DecodeFrom(const char* src) {
    SaleRecord r;
    r.day = DecodeDouble(src + kDayOffset);
    r.amount = DecodeDouble(src + kAmountOffset);
    r.cust = DecodeFixed64(src + kCustOffset);
    r.part = DecodeFixed64(src + kPartOffset);
    r.supp = DecodeFixed64(src + kSuppOffset);
    r.row_id = DecodeFixed64(src + kRowIdOffset);
    return r;
  }
};

/// An owning, variable-layout record buffer (convenience for APIs that
/// return records by value).
using RecordBuffer = std::string;

}  // namespace msv::storage

#endif  // MSV_STORAGE_RECORD_H_
