// Reproduces Figure 15 of the paper: the number of records the ACE Tree
// query algorithm must buffer (matching records awaiting combine
// partners), as a fraction of the relation, for query selectivities of
// 0.25% (Fig. 15a) and 2.5% (Fig. 15b). Reports min / average / max over
// the query workload at fixed fractions of the scan time.

#include <cstdio>
#include <memory>

#include "core/ace_sampler.h"
#include "core/ace_tree.h"
#include "harness.h"
#include "relation/workload.h"
#include "util/logging.h"

namespace msv::bench {
namespace {

void RunOneSelectivity(BenchEnv& env, double selectivity,
                       const std::string& label, size_t num_queries,
                       double max_x_pct) {
  const double scan_ms = env.ScanMs();
  relation::WorkloadGenerator workload({{0.0, env.options().day_max}},
                                       env.options().seed + 9);
  auto queries = workload.Queries(selectivity, 1, num_queries);

  std::vector<StepSeries> gauges;
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    auto device = BenchEnv::NewDevice();
    auto timed = env.TimedEnv(device);
    auto tree_or =
        core::AceTree::Open(timed.get(), BenchEnv::kAce, env.layout());
    MSV_CHECK(tree_or.ok());
    auto tree = std::move(tree_or).value();
    core::AceSampler sampler(tree.get(), queries[qi],
                             env.options().seed + qi);
    device->clock().Reset();  // metadata is warm; measure leaf I/O only
    RunResult r = RunTimed(&sampler, *device, scan_ms * max_x_pct / 100.0,
                           [&sampler] { return sampler.buffered_records(); });
    gauges.push_back(std::move(r.gauge));
  }

  const double n = static_cast<double>(env.options().records);
  std::vector<std::vector<double>> rows;
  for (double x = 0.5; x <= max_x_pct + 1e-9; x += 0.5) {
    Aggregate agg = AggregateAt(gauges, x / 100.0 * scan_ms);
    rows.push_back({x, agg.min / n, agg.mean / n, agg.max / n});
  }
  std::vector<std::string> header{"pct_scan_time", "min_fraction",
                                  "avg_fraction", "max_fraction"};
  PrintTable("fig15" + label + ": ACE tree buffered records, selectivity " +
                 std::to_string(selectivity * 100) + "%",
             header, rows);
  WriteCsv("fig15" + label + ".csv", header, rows);
}

int Main(int argc, char** argv) {
  Flags flags(argc, argv,
              {{"records", "2000000"},
               {"queries", "10"},
               {"page", "65536"},
               {"seed", "42"},
               {"max_x", "11"}});
  BenchEnv::Options options;
  options.records = flags.GetInt("records");
  options.page_size = flags.GetInt("page");
  options.seed = flags.GetInt("seed");
  options.dims = 1;
  BenchEnv env(options);
  env.BuildAce();
  size_t queries = flags.GetInt("queries");
  double max_x = flags.GetDouble("max_x");
  RunOneSelectivity(env, 0.0025, "a", queries, max_x);
  RunOneSelectivity(env, 0.025, "b", queries, max_x);
  return 0;
}

}  // namespace
}  // namespace msv::bench

int main(int argc, char** argv) { return msv::bench::Main(argc, argv); }
