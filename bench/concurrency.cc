// Concurrent-serving benchmark: one shared view, N threads.
//
// Sweeps thread counts (1, 2, 4, ... up to --threads) over four phases,
// all against shared structures:
//
//   pool      N threads pin/read/unpin pages of the SALE heap file
//             through ONE shared BufferPool (accounting cross-checked).
//   samplers  N concurrent AceSamplers, one query each, on ONE shared
//             ACE tree and ONE simulated disk arm. The per-thread
//             level_disk_us attributions must reconcile EXACTLY with the
//             device's busy-time delta — the end-to-end check that
//             thread-local I/O attribution loses nothing.
//   parallel  one query fanned across N worker threads
//             (ParallelAceSampler); same exact reconciliation.
//   sessions  N MSVQL scripts served concurrently by one Executor
//             through a SessionPool.
//
// Writes bench_results/BENCH_concurrency.json with per-thread-count
// timings and throughput so CI can track scaling.

#include <chrono>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "core/ace_sampler.h"
#include "core/ace_tree.h"
#include "core/parallel_sampler.h"
#include "harness.h"
#include "io/buffer_pool.h"
#include "query/executor.h"
#include "query/session_pool.h"
#include "relation/workload.h"
#include "util/logging.h"
#include "util/random.h"

namespace msv::bench {
namespace {

double WallMsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// Sum of a sampler's per-level disk attribution across all levels.
template <typename Sampler>
uint64_t TotalLevelDiskUs(const Sampler& sampler, uint32_t height) {
  uint64_t sum = 0;
  for (uint32_t level = 1; level <= height; ++level) {
    sum += sampler.level_disk_us(level);
  }
  return sum;
}

struct PhaseResult {
  double wall_ms = 0;
  uint64_t samples = 0;
  uint64_t busy_us = 0;
};

}  // namespace

int Run(int argc, char** argv) {
  Flags flags(argc, argv,
              {{"records", "500000"},
               {"threads", "8"},
               {"page", "65536"},
               {"seed", "42"},
               {"selectivity", "0.05"},
               {"smoke", "0"}});
  const bool smoke = flags.GetInt("smoke") != 0;
  const size_t max_threads = flags.GetInt("threads");
  MSV_CHECK_MSG(max_threads >= 1, "--threads must be >= 1");

  BenchEnv::Options options;
  options.records = smoke ? 50'000 : flags.GetInt("records");
  options.page_size = flags.GetInt("page");
  options.seed = flags.GetInt("seed");
  options.dims = 1;
  BenchEnv env(options);
  env.BuildAce();
  const double selectivity = flags.GetDouble("selectivity");

  std::vector<size_t> sweep;
  for (size_t t = 1; t < max_threads; t *= 2) sweep.push_back(t);
  sweep.push_back(max_threads);

  obs::Json per_threads = obs::Json::Object();
  std::vector<std::vector<double>> rows;

  for (size_t threads : sweep) {
    // --- Phase 1: shared buffer pool under contention.
    PhaseResult pool_phase;
    {
      auto device = BenchEnv::NewDevice();
      auto timed = env.TimedEnv(device);
      auto file_or = timed->OpenFile(BenchEnv::kSale, /*create=*/false);
      MSV_CHECK(file_or.ok());
      auto file = std::move(file_or).value();
      auto size_or = file->Size();
      MSV_CHECK(size_or.ok());
      const uint64_t num_pages =
          (size_or.value() + options.page_size - 1) / options.page_size;
      // Pool at 25% of the pages, multiple shards, so eviction churns.
      io::BufferPool pool(options.page_size,
                          std::max<size_t>(8, num_pages / 4));
      const uint64_t gets_per_thread = smoke ? 2'000 : 20'000;
      auto start = std::chrono::steady_clock::now();
      std::vector<std::thread> workers;
      workers.reserve(threads);
      for (size_t t = 0; t < threads; ++t) {
        workers.emplace_back([&, t] {
          Pcg64 rng = DeriveRngStream(options.seed, t);
          for (uint64_t i = 0; i < gets_per_thread; ++i) {
            auto page = pool.Get(file.get(), /*file_id=*/1,
                                 rng.Below(num_pages));
            MSV_CHECK(page.ok());
            // Touch the bytes while pinned.
            MSV_CHECK(page.value().size() > 0);
          }
        });
      }
      for (auto& w : workers) w.join();
      pool_phase.wall_ms = WallMsSince(start);
      pool_phase.samples = threads * gets_per_thread;
      pool_phase.busy_us = device->total_stats().busy_us;
      std::string violation = pool.CheckAccounting();
      MSV_CHECK_MSG(violation.empty(), "pool accounting: " + violation);
      io::BufferPoolStats s = pool.total_stats();
      MSV_CHECK_MSG(s.hits + s.misses == threads * gets_per_thread,
                    "pool hit+miss must equal the issued Gets");
    }

    // --- Phase 2: N concurrent samplers, one shared tree + disk arm.
    PhaseResult samplers_phase;
    {
      auto device = BenchEnv::NewDevice();
      auto timed = env.TimedEnv(device);
      auto tree_or =
          core::AceTree::Open(timed.get(), BenchEnv::kAce, env.layout());
      MSV_CHECK(tree_or.ok());
      auto tree = std::move(tree_or).value();
      relation::WorkloadGenerator workload(
          {{0.0, options.day_max}, {0.0, options.amount_max}},
          options.seed + 9);
      auto queries = workload.Queries(selectivity, /*dims=*/1, threads);

      const io::DiskStats before = device->total_stats();
      std::vector<uint64_t> attributed(threads, 0);
      std::vector<uint64_t> returned(threads, 0);
      auto start = std::chrono::steady_clock::now();
      std::vector<std::thread> workers;
      workers.reserve(threads);
      for (size_t t = 0; t < threads; ++t) {
        workers.emplace_back([&, t] {
          core::AceSampler sampler(tree.get(), queries[t],
                                   options.seed + 100 + t);
          while (!sampler.done()) {
            auto batch = sampler.NextBatch();
            MSV_CHECK(batch.ok());
          }
          attributed[t] = TotalLevelDiskUs(sampler, tree->meta().height);
          returned[t] = sampler.samples_returned();
        });
      }
      for (auto& w : workers) w.join();
      samplers_phase.wall_ms = WallMsSince(start);
      uint64_t attributed_sum = 0;
      for (size_t t = 0; t < threads; ++t) {
        attributed_sum += attributed[t];
        samplers_phase.samples += returned[t];
      }
      samplers_phase.busy_us =
          (device->total_stats() - before).busy_us;
      // The headline invariant: per-query thread-local attribution sums
      // exactly (to the microsecond) to the shared arm's busy time.
      MSV_CHECK_MSG(attributed_sum == samplers_phase.busy_us,
                    "sampler disk attribution must reconcile exactly");
    }

    // --- Phase 3: one query fanned across N prefetch workers.
    PhaseResult parallel_phase;
    {
      auto device = BenchEnv::NewDevice();
      auto timed = env.TimedEnv(device);
      auto tree_or =
          core::AceTree::Open(timed.get(), BenchEnv::kAce, env.layout());
      MSV_CHECK(tree_or.ok());
      auto tree = std::move(tree_or).value();
      relation::WorkloadGenerator workload(
          {{0.0, options.day_max}, {0.0, options.amount_max}},
          options.seed + 13);
      auto queries = workload.Queries(selectivity, /*dims=*/1, 1);

      const io::DiskStats before = device->total_stats();
      auto start = std::chrono::steady_clock::now();
      core::ParallelAceSampler::Options popt;
      popt.threads = threads;
      core::ParallelAceSampler sampler(tree.get(), queries[0],
                                       options.seed + 200, popt);
      while (!sampler.done()) {
        auto batch = sampler.NextBatch();
        MSV_CHECK(batch.ok());
      }
      parallel_phase.wall_ms = WallMsSince(start);
      parallel_phase.samples = sampler.samples_returned();
      parallel_phase.busy_us = (device->total_stats() - before).busy_us;
      MSV_CHECK_MSG(TotalLevelDiskUs(sampler, tree->meta().height) ==
                        parallel_phase.busy_us,
                    "parallel sampler disk attribution must reconcile");
    }

    // --- Phase 4: N MSVQL sessions against one executor.
    PhaseResult sessions_phase;
    {
      auto mem = io::NewMemEnv();
      auto exec_or = query::Executor::Open(mem.get());
      MSV_CHECK(exec_or.ok());
      auto exec = std::move(exec_or).value();
      const uint64_t rows = smoke ? 5'000 : 20'000;
      auto setup = exec->Run(
          "GENERATE TABLE sale ROWS " + std::to_string(rows) +
          " SEED 7; CREATE MATERIALIZED SAMPLE VIEW v AS SELECT * FROM "
          "sale INDEX ON day;");
      MSV_CHECK(setup.ok());
      std::vector<std::string> scripts;
      for (size_t t = 0; t < threads; ++t) {
        double lo = 1000.0 * static_cast<double>(t);
        scripts.push_back("ESTIMATE AVG(amount) FROM v WHERE day BETWEEN " +
                          std::to_string(lo) + " AND " +
                          std::to_string(lo + 40000.0) +
                          " SAMPLES 500;");
      }
      auto start = std::chrono::steady_clock::now();
      auto results =
          query::SessionPool::RunScripts(exec.get(), scripts, threads);
      sessions_phase.wall_ms = WallMsSince(start);
      for (const auto& r : results) {
        MSV_CHECK_MSG(r.ok(), "session script failed");
      }
      sessions_phase.samples = results.size();
    }

    std::printf(
        "threads=%zu  pool %.1f ms  samplers %.1f ms (%llu samples, "
        "busy %llu us)  parallel %.1f ms  sessions %.1f ms\n",
        threads, pool_phase.wall_ms, samplers_phase.wall_ms,
        static_cast<unsigned long long>(samplers_phase.samples),
        static_cast<unsigned long long>(samplers_phase.busy_us),
        parallel_phase.wall_ms, sessions_phase.wall_ms);

    rows.push_back({static_cast<double>(threads), pool_phase.wall_ms,
                    samplers_phase.wall_ms, parallel_phase.wall_ms,
                    sessions_phase.wall_ms});

    obs::Json entry = obs::Json::Object();
    entry["pool_wall_ms"] = obs::Json(pool_phase.wall_ms);
    entry["pool_gets"] = obs::Json(pool_phase.samples);
    entry["samplers_wall_ms"] = obs::Json(samplers_phase.wall_ms);
    entry["samplers_samples"] = obs::Json(samplers_phase.samples);
    entry["samplers_busy_us"] = obs::Json(samplers_phase.busy_us);
    entry["samplers_reconciled"] = obs::Json(true);
    entry["parallel_wall_ms"] = obs::Json(parallel_phase.wall_ms);
    entry["parallel_samples"] = obs::Json(parallel_phase.samples);
    entry["parallel_reconciled"] = obs::Json(true);
    entry["sessions_wall_ms"] = obs::Json(sessions_phase.wall_ms);
    per_threads[std::to_string(threads)] = std::move(entry);
  }

  PrintTable("concurrency: wall ms per phase",
             {"threads", "pool_ms", "samplers_ms", "parallel_ms",
              "sessions_ms"},
             rows);
  WriteCsv("concurrency.csv",
           {"threads", "pool_ms", "samplers_ms", "parallel_ms",
            "sessions_ms"},
           rows);

  obs::Json numbers = obs::Json::Object();
  numbers["records"] = obs::Json(options.records);
  numbers["selectivity"] = obs::Json(selectivity);
  numbers["smoke"] = obs::Json(smoke);
  numbers["max_threads"] = obs::Json(static_cast<uint64_t>(max_threads));
  numbers["by_threads"] = std::move(per_threads);
  WriteBenchJson("concurrency", numbers);
  return 0;
}

}  // namespace msv::bench

int main(int argc, char** argv) { return msv::bench::Run(argc, argv); }
