// Reproduces Figure 18 of the paper: Sampling rate, 2-d predicate accepting 25% of records.
#include "sampling_rate.h"

int main(int argc, char** argv) {
  msv::bench::SamplingRateConfig config;
  config.figure = "fig18";
  config.caption = "Sampling rate, 2-d predicate accepting 25% of records";
  config.selectivity = 0.25;
  config.dims = 2;
  config.max_x_pct = 2 == 1 ? 4.0 : 5.0;
  return msv::bench::RunSamplingRateBench(argc, argv, config);
}
