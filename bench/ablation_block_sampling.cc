// Block-based sampling ablation (paper Sec. 2.3).
//
// The paper's argument for rejecting block-based B+-tree sampling: whole
// blocks are 2-3 orders of magnitude cheaper per record, but "in the
// extreme case where the values on each block of records are closely
// correlated with one another, all of the N samples may be no better than
// a single sample". We quantify this with a relation whose AMOUNT is
// correlated with DAY (the index key), so pages contain similar amounts:
//
//   * at EQUAL SAMPLE SIZE, the variance of the AVG(AMOUNT) estimate from
//     block samples exceeds the record-level variance by the design
//     effect (~ 1 + (B-1) * intra-block correlation);
//   * at equal I/O, blocks return ~records-per-page times more records —
//     the speedup the paper concedes.

#include <cmath>
#include <cstdio>

#include "btree/block_sampler.h"
#include "btree/btree_sampler.h"
#include "btree/ranked_btree.h"
#include "harness.h"
#include "io/buffer_pool.h"
#include "storage/heap_file.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/stats.h"

namespace msv::bench {
namespace {

double AvgOfFirstN(sampling::SampleStream* stream, uint64_t n) {
  RunningStats stats;
  while (!stream->done() && stats.count() < n) {
    auto batch = stream->NextBatch();
    MSV_CHECK(batch.ok());
    for (size_t i = 0; i < batch.value().count() && stats.count() < n; ++i) {
      stats.Add(storage::SaleRecord::DecodeFrom(batch.value().record(i))
                    .amount);
    }
  }
  return stats.mean();
}

int Main(int argc, char** argv) {
  Flags flags(argc, argv,
              {{"records", "200000"},
               {"trials", "60"},
               {"sample_size", "400"},
               {"seed", "42"},
               {"page", "8192"},
               {"correlation", "0.95"}});
  const uint64_t records = flags.GetInt("records");
  const int trials = static_cast<int>(flags.GetInt("trials"));
  const uint64_t sample_size = flags.GetInt("sample_size");
  const double corr = flags.GetDouble("correlation");

  // Relation with AMOUNT correlated to the key: amount = corr * f(day) +
  // (1-corr) * noise, both on [0, 10000).
  auto env = io::NewMemEnv();
  {
    auto writer = storage::HeapFileWriter::Create(
                      env.get(), "sale", storage::SaleRecord::kSize)
                      .value();
    Pcg64 rng(flags.GetInt("seed"));
    char buf[storage::SaleRecord::kSize];
    for (uint64_t i = 0; i < records; ++i) {
      storage::SaleRecord rec;
      rec.day = rng.DoubleInRange(0, 100000.0);
      rec.amount = corr * (rec.day / 10.0) +
                   (1.0 - corr) * rng.DoubleInRange(0, 10000.0);
      rec.row_id = i;
      rec.EncodeTo(buf);
      MSV_CHECK(writer->Append(buf).ok());
    }
    MSV_CHECK(writer->Finish().ok());
  }
  auto layout = storage::SaleRecord::Layout1D();
  btree::BTreeOptions options;
  options.page_size = flags.GetInt("page");
  MSV_CHECK(
      btree::BuildRankedBTree(env.get(), "sale", "bt", layout, options).ok());
  io::BufferPool pool(options.page_size, 4096);
  auto tree =
      btree::RankedBTree::Open(env.get(), "bt", layout, &pool, 1).value();

  auto query = sampling::RangeQuery::OneDim(20000, 80000);  // 60% of keys

  // True mean over the range.
  double truth = 0;
  uint64_t matches = 0;
  {
    auto file = storage::HeapFile::Open(env.get(), "sale").value();
    auto scanner = file->NewScanner();
    for (;;) {
      auto rec = scanner.Next();
      MSV_CHECK(rec.ok());
      if (rec.value() == nullptr) break;
      if (query.Matches(layout, rec.value())) {
        truth += storage::SaleRecord::DecodeFrom(rec.value()).amount;
        ++matches;
      }
    }
    truth /= static_cast<double>(matches);
  }

  RunningStats record_level, block_level;
  uint64_t block_pages = 0;
  for (int t = 0; t < trials; ++t) {
    btree::BTreeSampler record_sampler(tree.get(), query, 1000 + t, 64);
    record_level.Add(AvgOfFirstN(&record_sampler, sample_size) - truth);
    btree::BlockSampler block_sampler(tree.get(), query, 2000 + t);
    block_level.Add(AvgOfFirstN(&block_sampler, sample_size) - truth);
    block_pages += block_sampler.pages_read();
  }

  double var_record = record_level.variance() + record_level.mean() *
                                                    record_level.mean();
  double var_block =
      block_level.variance() + block_level.mean() * block_level.mean();
  double design_effect = var_record > 0 ? var_block / var_record : 0;
  double records_per_page = static_cast<double>(
      btree::format::LeafCapacity(options.page_size, layout.record_size));
  double io_per_record_record_level = 1.0;  // one page access per draw
  double io_per_record_block = static_cast<double>(block_pages) /
                               (static_cast<double>(trials) *
                                static_cast<double>(sample_size));

  std::vector<std::vector<double>> rows{
      {static_cast<double>(sample_size), std::sqrt(var_record),
       std::sqrt(var_block), design_effect, records_per_page,
       io_per_record_record_level, io_per_record_block}};
  PrintTable(
      "block-sampling ablation: RMSE of AVG at equal sample size "
      "(key-correlated values, corr=" +
          std::to_string(corr) + ")",
      {"sample_size", "rmse_record_level", "rmse_block_level",
       "design_effect", "records_per_page", "io_per_rec_record",
       "io_per_rec_block"},
      rows);
  WriteCsv("ablation_block.csv",
           {"sample_size", "rmse_record", "rmse_block", "design_effect",
            "records_per_page", "io_record", "io_block"},
           rows);
  std::printf(
      "\nblock sampling needs %.3fx fewer I/Os per record but its %zu-"
      "record sample\nestimates like a much smaller independent sample "
      "(design effect %.1fx) —\nSec. 2.3's reason to reject it for "
      "sample views.\n",
      io_per_record_record_level / io_per_record_block,
      static_cast<size_t>(sample_size), design_effect);
  return 0;
}

}  // namespace
}  // namespace msv::bench

int main(int argc, char** argv) { return msv::bench::Main(argc, argv); }
