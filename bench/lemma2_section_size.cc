// Validates Lemma 2 of the paper: the expected number of records in any
// leaf-node section is E[mu] = |R| / (h * 2^(h-1)). Sweeps the tree
// height and compares the measured grand-mean section size (and the
// spread across sections) against the formula.

#include <cmath>
#include <cstdio>

#include "core/ace_tree.h"
#include "harness.h"
#include "util/logging.h"
#include "util/stats.h"

namespace msv::bench {
namespace {

int Main(int argc, char** argv) {
  Flags flags(argc, argv, {{"records", "200000"}, {"seed", "42"}});
  BenchEnv::Options options;
  options.records = flags.GetInt("records");
  options.seed = flags.GetInt("seed");
  BenchEnv env(options);

  std::vector<std::vector<double>> rows;
  for (uint32_t height : {2u, 4u, 6u, 8u, 10u}) {
    // Rebuild at each height (delete the previous tree file).
    env.raw_env()->DeleteFile(BenchEnv::kAce).IgnoreError();  // best-effort scratch cleanup
    env.BuildAce(height);
    auto tree_or =
        core::AceTree::Open(env.raw_env(), BenchEnv::kAce, env.layout());
    MSV_CHECK(tree_or.ok());
    auto tree = std::move(tree_or).value();

    RunningStats sizes;
    for (uint64_t leaf = 0; leaf < tree->meta().num_leaves; ++leaf) {
      auto data_or = tree->ReadLeaf(leaf);
      MSV_CHECK(data_or.ok());
      for (uint32_t s = 1; s <= height; ++s) {
        sizes.Add(static_cast<double>(data_or.value().SectionCount(s)));
      }
    }
    double expected =
        static_cast<double>(options.records) /
        (static_cast<double>(height) *
         static_cast<double>(1ull << (height - 1)));
    rows.push_back({static_cast<double>(height),
                    static_cast<double>(1ull << (height - 1)), expected,
                    sizes.mean(), sizes.stddev(), sizes.min(), sizes.max()});
  }
  std::vector<std::string> header{"height_h", "leaves_F",  "lemma2_E[mu]",
                                  "measured_mean", "stddev", "min", "max"};
  PrintTable("lemma2: section size vs |R| / (h * 2^(h-1))", header, rows);
  WriteCsv("lemma2.csv", header, rows);

  bool ok = true;
  for (const auto& row : rows) {
    if (std::abs(row[3] - row[2]) > 0.02 * row[2] + 0.5) ok = false;
  }
  std::printf("\nlemma2 formula %s\n", ok ? "HOLDS" : "VIOLATED");
  return 0;  // informational: the table is the artifact
}

}  // namespace
}  // namespace msv::bench

int main(int argc, char** argv) { return msv::bench::Main(argc, argv); }
