// Construction-cost study (paper Sec. 5: "constructing an ACE-Tree from
// scratch requires two external sorts of a large database table", plus a
// very small space overhead).
//
// Builds every structure over relations of increasing size on a simulated
// disk and reports modeled build time (normalized to one sequential scan),
// number of external-sort passes, and index space overhead.

#include <cstdio>

#include "btree/ranked_btree.h"
#include "core/ace_builder.h"
#include "harness.h"
#include "permuted/permuted_file.h"
#include "relation/sale_generator.h"
#include "rtree/rtree.h"
#include "storage/heap_file.h"
#include "util/logging.h"

namespace msv::bench {
namespace {

int Main(int argc, char** argv) {
  // --io_batch=0 disables double-buffered merge readahead and batched
  // run/leaf writes in the external sorts (the A/B the io_batching bench
  // sweeps; default matches production).
  Flags flags(argc, argv,
              {{"seed", "42"}, {"page", "65536"}, {"io_batch", "1"}});
  const size_t page = flags.GetInt("page");
  const bool io_batch = flags.GetInt("io_batch") != 0;

  std::vector<std::vector<double>> rows;
  for (uint64_t n : {100'000ull, 300'000ull, 1'000'000ull}) {
    auto env = io::NewMemEnv();
    relation::SaleGenOptions gen;
    gen.num_records = n;
    gen.seed = flags.GetInt("seed");
    MSV_CHECK(relation::GenerateSaleRelation(env.get(), "sale", gen).ok());
    auto layout = storage::SaleRecord::Layout1D();
    const uint64_t bytes = n * storage::SaleRecord::kSize;
    io::DiskDevice probe;
    const double scan_ms = probe.SequentialScanMs(bytes);

    auto timed_build = [&](auto&& fn) {
      auto device = std::make_shared<io::DiskDevice>();
      auto timed = io::NewSimEnv(env.get(), device);
      fn(timed.get());
      return device->clock().NowMs() / scan_ms;  // in scans
    };

    core::AceBuildMetrics ace_metrics;
    double ace_scans = timed_build([&](io::Env* e) {
      core::AceBuildOptions options;
      options.page_size = page;
      options.sort.batched_io = io_batch;
      MSV_CHECK(
          core::BuildAceTree(e, "sale", "ace", layout, options, &ace_metrics)
              .ok());
    });
    double btree_scans = timed_build([&](io::Env* e) {
      btree::BTreeOptions options;
      options.page_size = page;
      MSV_CHECK(btree::BuildRankedBTree(e, "sale", "btree", layout, options)
                    .ok());
    });
    double perm_scans = timed_build([&](io::Env* e) {
      permuted::PermuteOptions options;
      options.sort.batched_io = io_batch;
      MSV_CHECK(permuted::BuildPermutedFile(e, "sale", "perm", options).ok());
    });
    double rtree_scans = timed_build([&](io::Env* e) {
      rtree::RTreeOptions options;
      options.page_size = page;
      MSV_CHECK(rtree::BuildRTree(e, "sale", "rtree",
                                  storage::SaleRecord::Layout2D(), options)
                    .ok());
    });

    double overhead_pct = 100.0 *
                          static_cast<double>(ace_metrics.overhead_bytes) /
                          static_cast<double>(bytes);
    rows.push_back({static_cast<double>(n), ace_scans,
                    static_cast<double>(ace_metrics.phase1_sort.merge_passes +
                                        ace_metrics.phase2_sort.merge_passes),
                    overhead_pct, btree_scans, perm_scans, rtree_scans});
  }
  std::vector<std::string> header{
      "records",     "ace_build_scans",   "ace_sort_passes",
      "ace_overhead_pct", "btree_build_scans", "perm_build_scans",
      "rtree_build_scans"};
  PrintTable(
      "construction cost (build time in units of one sequential scan of "
      "the relation; simulated disk)",
      header, rows);
  WriteCsv("construction.csv", header, rows);

  obs::Json numbers = obs::Json::Object();
  numbers["io_batch"] = obs::Json(io_batch);
  numbers["page"] = obs::Json(static_cast<uint64_t>(page));
  obs::Json sizes = obs::Json::Array();
  for (const auto& row : rows) {
    obs::Json entry = obs::Json::Object();
    for (size_t i = 0; i < header.size(); ++i) {
      entry[header[i]] = obs::Json(row[i]);
    }
    sizes.Append(std::move(entry));
  }
  numbers["sizes"] = std::move(sizes);
  WriteBenchJson("construction", numbers);
  return 0;
}

}  // namespace
}  // namespace msv::bench

int main(int argc, char** argv) { return msv::bench::Main(argc, argv); }
