// Shared benchmark harness for reproducing the paper's figures.
//
// Every figure plots "% of the relation's records retrieved as samples"
// against "% of the time required to scan the relation", averaged over 10
// random range queries of a fixed selectivity. The harness:
//
//   * generates the SALE relation in a private in-memory Env,
//   * builds each competitor's structure (ACE tree / ranked B+-tree /
//     STR R-tree / randomly permuted file),
//   * runs each query against each structure through a fresh simulated
//     disk (paper-grade 15k-RPM parameters) and a buffer pool sized at 5%
//     of the relation (the paper's 1 GB RAM : 20 GB data ratio),
//   * records (simulated time, cumulative samples) step series, averages
//     them across queries at fixed checkpoints, prints the table the
//     figure plots and writes a CSV under bench_results/.
//
// Curve shapes in these normalized coordinates are nearly independent of
// the absolute relation size (see EXPERIMENTS.md), so the default 1M
// records reproduce the shape of the paper's 200M-record experiments.

#ifndef MSV_BENCH_HARNESS_H_
#define MSV_BENCH_HARNESS_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "io/buffer_pool.h"
#include "io/disk_model.h"
#include "io/env.h"
#include "obs/json.h"
#include "sampling/range_query.h"
#include "sampling/sample_stream.h"
#include "storage/record.h"

namespace msv::bench {

/// Tiny --key=value flag parser (unknown flags are fatal; every bench
/// documents its flags via --help).
class Flags {
 public:
  Flags(int argc, char** argv,
        std::map<std::string, std::string> defaults_and_help);

  uint64_t GetInt(const std::string& key) const;
  double GetDouble(const std::string& key) const;
  std::string GetString(const std::string& key) const;

 private:
  std::map<std::string, std::string> values_;
};

/// A non-decreasing step function sampled as (x, y) points; y holds
/// between consecutive x's.
class StepSeries {
 public:
  void Add(double x, double y) { points_.emplace_back(x, y); }

  /// Value of the step function at `x` (0 before the first point).
  double ValueAt(double x) const;

  bool empty() const { return points_.empty(); }
  double max_x() const { return points_.empty() ? 0.0 : points_.back().first; }

 private:
  std::vector<std::pair<double, double>> points_;
};

/// Mean / min / max of several series evaluated at one checkpoint.
struct Aggregate {
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
};

Aggregate AggregateAt(const std::vector<StepSeries>& series, double x);

/// Runs `stream` until the simulated clock passes `max_ms` (or the stream
/// finishes), recording cumulative samples (and optionally a second
/// gauge such as buffered records) after every pull.
struct RunResult {
  StepSeries samples;   // x = sim ms, y = cumulative samples
  StepSeries gauge;     // x = sim ms, y = gauge value (if gauge_fn given)
  uint64_t total_samples = 0;
  bool completed = false;
};

RunResult RunTimed(sampling::SampleStream* stream,
                   const io::DiskDevice& device, double max_ms,
                   const std::function<uint64_t()>& gauge_fn = nullptr);

/// Writes a CSV file (creating bench_results/ beside the cwd).
void WriteCsv(const std::string& name,
              const std::vector<std::string>& header,
              const std::vector<std::vector<double>>& rows);

/// Writes bench_results/BENCH_<name>.json: a self-describing record
/// holding the bench's headline numbers plus a full dump of the process
/// metrics registry, so CI can track the perf trajectory without
/// scraping tables. The format round-trips through obs::Json::Parse
/// (pinned by the obs golden test).
void WriteBenchJson(const std::string& name, const obs::Json& numbers);

/// Pretty-prints a table to stdout.
void PrintTable(const std::string& title,
                const std::vector<std::string>& header,
                const std::vector<std::vector<double>>& rows);

/// The benchmark environment: relation + structures, all in memory, plus
/// helpers to open any structure through a fresh simulated disk.
class BenchEnv {
 public:
  struct Options {
    uint64_t records = 1'000'000;
    size_t page_size = 64 << 10;
    uint64_t seed = 42;
    uint32_t dims = 1;           // 1: ACE+B+tree; 2: kd-ACE+R-tree
    double buffer_fraction = 0.05;
    double day_max = 100000.0;
    double amount_max = 10000.0;
  };

  explicit BenchEnv(Options options);

  const Options& options() const { return options_; }
  io::Env* raw_env() { return env_.get(); }
  const storage::RecordLayout& layout() const { return layout_; }
  uint64_t relation_bytes() const;
  /// Sequential-scan time of the relation under the disk model (ms).
  double ScanMs() const;

  /// Buffer-pool capacity implied by buffer_fraction.
  size_t PoolPages() const;

  /// Names of the structure files inside the env.
  static constexpr const char* kSale = "sale";
  static constexpr const char* kPermuted = "sale.permuted";
  static constexpr const char* kBTree = "sale.btree";
  static constexpr const char* kRTree = "sale.rtree";
  static constexpr const char* kAce = "sale.ace";

  /// Builds the requested structures (idempotent).
  void BuildPermuted();
  void BuildBTree();
  void BuildRTree();
  void BuildAce(uint32_t height = 0);

  /// A fresh simulated device with paper-grade parameters.
  static std::shared_ptr<io::DiskDevice> NewDevice();

  /// Opens env through a timing decorator bound to `device`.
  std::unique_ptr<io::Env> TimedEnv(std::shared_ptr<io::DiskDevice> device);

 private:
  Options options_;
  std::unique_ptr<io::Env> env_;
  storage::RecordLayout layout_;
};

}  // namespace msv::bench

#endif  // MSV_BENCH_HARNESS_H_
