// Driver shared by the sampling-rate figures (Figs. 11-14 and 16-18).
//
// Runs `num_queries` random range queries of the configured selectivity
// against each competitor, each on a cold simulated disk and a buffer pool
// sized at 5% of the relation, and reports the averaged percentage of the
// relation retrieved as samples at fixed fractions of the full-scan time.

#ifndef MSV_BENCH_SAMPLING_RATE_H_
#define MSV_BENCH_SAMPLING_RATE_H_

#include <string>
#include <vector>

namespace msv::bench {

struct SamplingRateConfig {
  std::string figure;    // e.g. "fig11"
  std::string caption;   // printed above the table
  double selectivity = 0.0025;
  uint32_t dims = 1;     // 1 -> ACE vs B+-tree vs permuted; 2 -> k-d ACE vs
                         // R-tree vs permuted
  /// Checkpoints on the x axis, in % of full-scan time. Empty -> derived
  /// from max_x_pct.
  std::vector<double> checkpoints;
  double max_x_pct = 4.0;
  bool to_completion = false;  // Fig. 14: run until every method finishes
};

/// Entry point used by each figure binary's main().
int RunSamplingRateBench(int argc, char** argv,
                         const SamplingRateConfig& config);

}  // namespace msv::bench

#endif  // MSV_BENCH_SAMPLING_RATE_H_
