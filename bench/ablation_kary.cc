// Binary vs k-ary ACE tree ablation (paper Sec. 3.4).
//
// The paper argues a binary tree supports "fast first" sampling better
// than a k-ary tree: with k children per node the query algorithm must
// make up to k traversals before the sections at a level can be combined,
// so useful samples arrive later. This bench simulates the generalized
// k-ary ACE tree at the event level over a synthetic uniform relation:
//
//   * a complete k-ary split tree of comparable leaf count for each k,
//   * the paper's construction randomness (uniform section in [1, h],
//     uniform leaf below the level-s ancestor),
//   * the round-robin stab order and the round-based combine rule (one
//     contribution per covering node per round — the same invariant the
//     on-disk binary engine enforces),
//
// and reports cumulative samples emitted after each leaf retrieval. Leaf
// retrievals cost the same I/O for every k (leaves have the same expected
// size), so "samples per leaf read" is the fair comparison.

#include <algorithm>
#include <cstdio>
#include <deque>
#include <map>
#include <vector>

#include "harness.h"
#include "util/random.h"

namespace msv::bench {
namespace {

struct KaryConfig {
  uint32_t k;
  uint32_t height;  // number of section levels; leaves = k^(height-1)
};

// Simulates one query; returns cumulative emitted samples after each leaf.
std::vector<double> SimulateKary(const KaryConfig& config, uint64_t records,
                                 double sel_lo, double sel_hi, Pcg64* rng) {
  const uint32_t k = config.k;
  const uint32_t h = config.height;
  uint64_t leaves = 1;
  for (uint32_t i = 1; i < h; ++i) leaves *= k;

  // Keys are uniform in [0,1); the level-i node of a key x is simply
  // floor(x * k^(i-1)) because splits are exact quantiles.
  // leaf_of[level][node] -> section contributions, as in the disk engine.

  // Assign each record (level-s node, leaf, key) per the paper's Phase 2.
  struct Placement {
    uint32_t section;
    uint64_t leaf;
    double key;
  };
  std::vector<std::vector<std::vector<double>>> leaf_sections(
      leaves, std::vector<std::vector<double>>(h));
  for (uint64_t r = 0; r < records; ++r) {
    double key = rng->NextDouble();
    uint32_t s = 1 + static_cast<uint32_t>(rng->Below(h));
    // Level-s ancestor index of this key.
    uint64_t width = leaves;
    for (uint32_t i = 1; i < s; ++i) width /= k;
    uint64_t group = static_cast<uint64_t>(key * static_cast<double>(leaves)) /
                     width * width;
    uint64_t leaf = group + rng->Below(width);
    leaf_sections[leaf][s - 1].push_back(key);
  }

  // Covering sets per level: nodes (index ranges of leaves) overlapping
  // the query interval.
  // Stab order: round-robin over children, preferring overlapping ones —
  // generalized from the binary shuttle.
  std::vector<uint64_t> stab_order;
  {
    std::vector<uint8_t> done(leaves, 0);
    // next-child pointer per internal node, keyed by (level, node index).
    std::map<std::pair<uint32_t, uint64_t>, uint32_t> next_child;
    uint64_t remaining = leaves;
    while (remaining > 0) {
      // One stab: descend from the root.
      uint64_t node = 0;
      uint64_t width = leaves;
      for (uint32_t level = 1; level < h; ++level) {
        width /= k;
        uint32_t& nxt = next_child[{level, node}];
        // Try k children starting at the round-robin pointer, preferring
        // not-done children that overlap the query.
        uint32_t chosen = k;  // invalid
        for (uint32_t pass = 0; pass < 2 && chosen == k; ++pass) {
          for (uint32_t i = 0; i < k; ++i) {
            uint32_t c = (nxt + i) % k;
            uint64_t child_lo = node + static_cast<uint64_t>(c) * width;
            double lo = static_cast<double>(child_lo) /
                        static_cast<double>(leaves);
            double hi = static_cast<double>(child_lo + width) /
                        static_cast<double>(leaves);
            bool overlaps = sel_lo < hi && lo <= sel_hi;
            bool any_not_done = false;
            for (uint64_t l = child_lo; l < child_lo + width; ++l) {
              if (!done[l]) {
                any_not_done = true;
                break;
              }
            }
            if (any_not_done && (overlaps || pass == 1)) {
              chosen = c;
              nxt = (c + 1) % k;
              break;
            }
          }
        }
        node += static_cast<uint64_t>(chosen) * width;
      }
      done[node] = 1;
      stab_order.push_back(node);
      --remaining;
    }
  }

  // Combine engine: per level, per covering node, FIFO of filtered
  // contribution sizes; a round emits one contribution per covering node.
  std::vector<double> cumulative;
  std::vector<std::map<uint64_t, std::deque<uint64_t>>> queues(h);
  std::vector<std::map<uint64_t, bool>> covering(h);
  {
    uint64_t width = leaves;
    for (uint32_t level = 1; level <= h; ++level) {
      for (uint64_t node = 0; node < leaves; node += width) {
        double lo = static_cast<double>(node) / static_cast<double>(leaves);
        double hi = static_cast<double>(node + width) /
                    static_cast<double>(leaves);
        if (sel_lo < hi && lo <= sel_hi) covering[level - 1][node] = true;
      }
      if (level < h) width /= k;
    }
  }
  uint64_t emitted = 0;
  for (uint64_t leaf : stab_order) {
    for (uint32_t level = 1; level <= h; ++level) {
      uint64_t width = leaves;
      for (uint32_t i = 1; i < level; ++i) width /= k;
      uint64_t ancestor = leaf / width * width;
      auto cov_it = covering[level - 1].find(ancestor);
      if (cov_it == covering[level - 1].end()) continue;
      uint64_t matching = 0;
      for (double key : leaf_sections[leaf][level - 1]) {
        if (key >= sel_lo && key <= sel_hi) ++matching;
      }
      queues[level - 1][ancestor].push_back(matching);
      // Emit complete rounds.
      for (;;) {
        bool full = true;
        for (const auto& [node, _] : covering[level - 1]) {
          auto it = queues[level - 1].find(node);
          if (it == queues[level - 1].end() || it->second.empty()) {
            full = false;
            break;
          }
        }
        if (!full) break;
        for (const auto& [node, _] : covering[level - 1]) {
          auto& q = queues[level - 1][node];
          emitted += q.front();
          q.pop_front();
        }
      }
    }
    cumulative.push_back(static_cast<double>(emitted));
  }
  return cumulative;
}

int Main(int argc, char** argv) {
  Flags flags(argc, argv,
              {{"records", "200000"}, {"selectivity", "0.2"}, {"seed", "42"},
               {"trials", "5"}});
  const uint64_t records = flags.GetInt("records");
  const double sel = flags.GetDouble("selectivity");
  const uint64_t trials = flags.GetInt("trials");

  // Comparable leaf counts: 2^8 = 256, 3^5 = 243, 4^4 = 256.
  std::vector<KaryConfig> configs{{2, 9}, {3, 6}, {4, 5}};
  std::vector<std::vector<double>> avg(configs.size());

  Pcg64 master(flags.GetInt("seed"));
  for (uint64_t t = 0; t < trials; ++t) {
    double lo = master.NextDouble() * (1.0 - sel);
    double hi = lo + sel;
    for (size_t c = 0; c < configs.size(); ++c) {
      Pcg64 rng = master.Fork();
      auto series = SimulateKary(configs[c], records, lo, hi, &rng);
      if (avg[c].empty()) avg[c].assign(series.size(), 0.0);
      for (size_t i = 0; i < series.size() && i < avg[c].size(); ++i) {
        avg[c][i] += series[i] / static_cast<double>(trials);
      }
    }
  }

  // Report samples after m leaf reads, m in powers of two. Leaves have
  // equal expected size across k, so equal m means equal I/O time.
  std::vector<std::vector<double>> rows;
  for (size_t m = 1; m <= avg[0].size(); m *= 2) {
    std::vector<double> row{static_cast<double>(m)};
    for (size_t c = 0; c < configs.size(); ++c) {
      row.push_back(m <= avg[c].size() ? avg[c][m - 1] : avg[c].back());
    }
    rows.push_back(std::move(row));
  }
  PrintTable(
      "k-ary ablation (Sec. 3.4): samples emitted after m leaf retrievals "
      "(equal I/O); binary arrives fastest",
      {"leaves_read_m", "k2_binary", "k3_ternary", "k4_quaternary"}, rows);
  WriteCsv("ablation_kary.csv", {"leaves_read_m", "k2", "k3", "k4"}, rows);
  return 0;
}

}  // namespace
}  // namespace msv::bench

int main(int argc, char** argv) { return msv::bench::Main(argc, argv); }
