// CPU hot-path microbench: wall-clock throughput of the in-memory
// scan→filter→sample→estimate loops, before vs after the DESIGN.md §15
// rework (batched branch-free predicate kernels, arena-backed zero-copy
// emission, compiled field accessors).
//
// Each loop keeps a faithful replica of the pre-change code path callable
// for in-bench A/B:
//
//   filter     baseline: per-record RangeQuery::Matches + std::string
//              append (the old CombineEngine::AddLeaf filter).
//              new:      RangeQuery::MatchBatchAt + one arena gather, at
//              every dispatch level the host can execute.
//   emit       baseline: per-record SampleBatch::Append of a shuffled
//              round with no pre-sizing (the old EmitShuffled).
//              new:      SampleBatch::Reserve then Append.
//   estimate   baseline: OnlineAggregator's std::function ctor fed the
//              executor's pre-change lambda (TableSchema::Value behind an
//              indirect call, per record, into the per-record Welford
//              fold).
//              new:      compiled storage::FieldAccessor ctor (batch
//              moments + one Chan merge per batch).
//              Both consume the same cache-resident batch — in the real
//              pipeline a batch is consumed right after the combiner
//              wrote it, so the estimate loop is a CPU benchmark, not a
//              memory-bandwidth one.
//
// Times are the min across --reps repetitions (suppresses scheduler
// noise). Writes bench_results/BENCH_cpu_hotpath.json with per-level
// throughput and the filter/estimate speedups; under --smoke (CI) the
// bench additionally asserts both speedups are >= 2x and that every
// kernel level agrees with the scalar reference byte for byte.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "harness.h"
#include "query/catalog.h"
#include "sampling/online_aggregator.h"
#include "sampling/range_query.h"
#include "sampling/sample_stream.h"
#include "storage/record.h"
#include "storage/record_view.h"
#include "util/arena.h"
#include "util/coding.h"
#include "util/cpu.h"
#include "util/logging.h"
#include "util/random.h"

namespace msv::bench {
namespace {

using sampling::RangeQuery;
using sampling::SampleBatch;
using storage::SaleRecord;

double WallMsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// Min wall ms of `fn` across `reps` runs.
double MinMs(int reps, const std::function<void()>& fn) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    auto start = std::chrono::steady_clock::now();
    fn();
    double ms = WallMsSince(start);
    if (r == 0 || ms < best) best = ms;
  }
  return best;
}

double MRecsPerSec(uint64_t records, double ms) {
  return ms > 0 ? static_cast<double>(records) / (ms * 1e3) : 0.0;
}

/// Densely packed SALE records with uniform keys; `day_hit` fraction land
/// inside the bench query's day interval by construction.
std::string MakeRelation(uint64_t n, uint64_t seed) {
  std::string data(n * SaleRecord::kSize, '\0');
  Pcg64 rng(seed);
  for (uint64_t i = 0; i < n; ++i) {
    SaleRecord rec;
    rec.day = rng.DoubleInRange(0.0, 100000.0);
    rec.amount = rng.DoubleInRange(0.0, 10000.0);
    rec.cust = rng.Below(1u << 20);
    rec.part = rng.Below(1u << 20);
    rec.supp = rng.Below(1u << 10);
    rec.row_id = i;
    rec.EncodeTo(data.data() + i * SaleRecord::kSize);
  }
  return data;
}

}  // namespace

int Run(int argc, char** argv) {
  Flags flags(argc, argv,
              {{"records", "2000000"},
               {"reps", "5"},
               {"selectivity", "0.5"},
               {"smoke", "0"}});
  const bool smoke = flags.GetInt("smoke") != 0;
  const uint64_t n = smoke ? 400'000 : flags.GetInt("records");
  const int reps = smoke ? 3 : static_cast<int>(flags.GetInt("reps"));
  const double selectivity = flags.GetDouble("selectivity");

  const storage::RecordLayout layout = SaleRecord::Layout1D();
  const size_t record_size = layout.record_size;
  const std::string relation = MakeRelation(n, /*seed=*/42);
  const char* base = relation.data();

  // Query matching ~selectivity of the day domain.
  const RangeQuery query = RangeQuery::OneDim(0.0, 100000.0 * selectivity);

  const util::CpuLevel detected = util::DetectCpuLevel();
  const util::CpuLevel active = util::ActiveCpuLevel();
  std::printf("cpu: detected=%s active=%s  records=%llu reps=%d\n",
              util::CpuLevelName(detected), util::CpuLevelName(active),
              static_cast<unsigned long long>(n), reps);

  obs::Json numbers = obs::Json::Object();
  numbers["records"] = obs::Json(n);
  numbers["reps"] = obs::Json(static_cast<uint64_t>(reps));
  numbers["selectivity"] = obs::Json(selectivity);
  numbers["smoke"] = obs::Json(smoke);
  numbers["cpu_detected"] = obs::Json(std::string(util::CpuLevelName(detected)));
  numbers["cpu_active"] = obs::Json(std::string(util::CpuLevelName(active)));

  // ---------------------------------------------------------------- filter
  // Baseline: the pre-change CombineEngine filter — per-record Matches,
  // matching bytes appended to a std::string.
  uint64_t baseline_matches = 0;
  std::string baseline_bytes;  // NOLINT(msv-hot-path-alloc) baseline replica
  double filter_base_ms = MinMs(reps, [&] {
    std::string filtered;
    for (uint64_t i = 0; i < n; ++i) {
      const char* rec = base + i * record_size;
      if (query.Matches(layout, rec)) filtered.append(rec, record_size);
    }
    baseline_matches = filtered.size() / record_size;
    baseline_bytes = std::move(filtered);
  });
  std::printf("filter  baseline(scalar+string)  %8.1f ms  %7.1f Mrec/s\n",
              filter_base_ms, MRecsPerSec(n, filter_base_ms));
  numbers["filter_baseline_mrecs"] =
      obs::Json(MRecsPerSec(n, filter_base_ms));

  // New path at every level the host can run: batched kernel into an
  // index buffer, then one arena gather (what FilterSection does).
  std::vector<uint32_t> idx(n);
  double filter_active_ms = 0.0;
  for (int l = 0; l <= static_cast<int>(detected); ++l) {
    const util::CpuLevel level = static_cast<util::CpuLevel>(l);
    util::Arena arena;
    uint64_t matches = 0;
    const char* gathered = nullptr;
    double ms = MinMs(reps, [&] {
      arena.Reset();
      matches = query.MatchBatchAt(level, layout, base, n, idx.data());
      char* dst = arena.Allocate(matches * record_size, alignof(double));
      for (uint64_t m = 0; m < matches; ++m) {
        std::memcpy(dst + m * record_size,
                    base + static_cast<size_t>(idx[m]) * record_size,
                    record_size);
      }
      gathered = dst;
    });
    MSV_CHECK_MSG(matches == baseline_matches,
                  "kernel match count diverged from scalar reference");
    MSV_CHECK_MSG(matches == 0 ||
                      std::memcmp(gathered, baseline_bytes.data(),
                                  matches * record_size) == 0,
                  "kernel match bytes diverged from scalar reference");
    std::printf("filter  batch/%-6s             %8.1f ms  %7.1f Mrec/s\n",
                util::CpuLevelName(level), ms, MRecsPerSec(n, ms));
    numbers[std::string("filter_batch_") + util::CpuLevelName(level) +
            "_mrecs"] = obs::Json(MRecsPerSec(n, ms));
    if (level == active) filter_active_ms = ms;
  }
  const double filter_speedup =
      filter_active_ms > 0 ? filter_base_ms / filter_active_ms : 0.0;
  std::printf("filter  speedup (active level)   %8.2fx\n", filter_speedup);
  numbers["filter_speedup"] = obs::Json(filter_speedup);

  // ------------------------------------------------------------------ emit
  // Round emission: shuffled order over the filtered records. Baseline is
  // the old EmitShuffled (growing appends); new path pre-sizes.
  const uint64_t matches = baseline_matches;
  std::vector<uint32_t> order(matches);
  for (uint64_t i = 0; i < matches; ++i) order[i] = static_cast<uint32_t>(i);
  {
    Pcg64 rng(7);
    Shuffle(&order, &rng);
  }
  double emit_base_ms = MinMs(reps, [&] {
    SampleBatch out;
    out.record_size = record_size;
    for (uint32_t i : order) {
      out.Append(baseline_bytes.data() +
                 static_cast<size_t>(i) * record_size);
    }
    MSV_CHECK(out.count() == matches);
  });
  double emit_new_ms = MinMs(reps, [&] {
    SampleBatch out;
    out.record_size = record_size;
    out.Reserve(matches);
    for (uint32_t i : order) {
      out.Append(baseline_bytes.data() +
                 static_cast<size_t>(i) * record_size);
    }
    MSV_CHECK(out.count() == matches);
  });
  std::printf("emit    baseline(append)         %8.1f ms  %7.1f Mrec/s\n",
              emit_base_ms, MRecsPerSec(matches, emit_base_ms));
  std::printf("emit    reserve+append           %8.1f ms  %7.1f Mrec/s\n",
              emit_new_ms, MRecsPerSec(matches, emit_new_ms));
  numbers["emit_baseline_mrecs"] = obs::Json(MRecsPerSec(matches, emit_base_ms));
  numbers["emit_reserve_mrecs"] = obs::Json(MRecsPerSec(matches, emit_new_ms));

  // -------------------------------------------------------------- estimate
  // A cache-resident batch of filtered records, consumed repeatedly until
  // `n` records have been folded (mirrors streamed consumption of
  // combiner-fresh batches; reps take the min on top).
  const uint64_t est_batch_records = std::min<uint64_t>(matches, 20'000);
  SampleBatch batch;
  batch.record_size = record_size;
  batch.data.assign(baseline_bytes.data(), est_batch_records * record_size);
  const uint64_t est_rounds =
      est_batch_records ? (n + est_batch_records - 1) / est_batch_records : 0;
  const uint64_t est_total = est_rounds * est_batch_records;

  // Pre-change path: the executor's schema lambda behind std::function.
  const query::TableSchema& schema = query::TableSchema::Sale();
  const query::Column* amount = schema.Find("amount");
  MSV_CHECK(amount != nullptr);
  double base_avg = 0.0, new_avg = 0.0;
  double est_base_ms = MinMs(reps, [&] {
    sampling::OnlineAggregator agg(
        [&schema, amount](const char* rec) {
          return schema.Value(rec, *amount);
        },
        /*population=*/est_total);
    for (uint64_t r = 0; r < est_rounds; ++r) agg.Consume(batch);
    base_avg = agg.Avg().value;
  });
  double est_new_ms = MinMs(reps, [&] {
    sampling::OnlineAggregator agg(
        storage::FieldAccessor::Double(SaleRecord::kAmountOffset),
        /*population=*/est_total);
    for (uint64_t r = 0; r < est_rounds; ++r) agg.Consume(batch);
    new_avg = agg.Avg().value;
  });
  // The two forms accumulate the same moments in a different association:
  // equal to rounding error, not bit-for-bit.
  MSV_CHECK_MSG(std::abs(base_avg - new_avg) <=
                    1e-9 * std::max(1.0, std::abs(base_avg)),
                "accessor estimate diverged from the std::function fold");
  const double est_speedup = est_new_ms > 0 ? est_base_ms / est_new_ms : 0.0;
  std::printf("estimate baseline(std::function) %8.1f ms  %7.1f Mrec/s\n",
              est_base_ms, MRecsPerSec(est_total, est_base_ms));
  std::printf("estimate accessor                %8.1f ms  %7.1f Mrec/s\n",
              est_new_ms, MRecsPerSec(est_total, est_new_ms));
  std::printf("estimate speedup                 %8.2fx\n", est_speedup);
  numbers["estimate_baseline_mrecs"] =
      obs::Json(MRecsPerSec(est_total, est_base_ms));
  numbers["estimate_accessor_mrecs"] =
      obs::Json(MRecsPerSec(est_total, est_new_ms));
  numbers["estimate_speedup"] = obs::Json(est_speedup);

  WriteBenchJson("cpu_hotpath", numbers);

  if (smoke) {
    MSV_CHECK_MSG(filter_speedup >= 2.0,
                  "smoke: filter loop is not >=2x over the scalar baseline");
    MSV_CHECK_MSG(est_speedup >= 2.0,
                  "smoke: estimate loop is not >=2x over std::function");
  }
  return 0;
}

}  // namespace msv::bench

int main(int argc, char** argv) { return msv::bench::Run(argc, argv); }
