#include "harness.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "btree/ranked_btree.h"
#include "core/ace_builder.h"
#include "obs/metrics.h"
#include "permuted/permuted_file.h"
#include "relation/sale_generator.h"
#include "rtree/rtree.h"
#include "util/logging.h"

namespace msv::bench {

// ---------------------------------------------------------------------------
// Flags
// ---------------------------------------------------------------------------

Flags::Flags(int argc, char** argv,
             std::map<std::string, std::string> defaults_and_help) {
  values_ = std::move(defaults_and_help);
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fprintf(stderr, "flags (--key=value):\n");
      for (const auto& [key, value] : values_) {
        std::fprintf(stderr, "  --%s (default: %s)\n", key.c_str(),
                     value.c_str());
      }
      std::exit(0);
    }
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unrecognized argument: %s\n", arg.c_str());
      std::exit(2);
    }
    // `--key=value`, or bare `--key` as shorthand for `--key=1` (boolean
    // flags such as --smoke).
    size_t eq = arg.find('=');
    std::string key =
        eq == std::string::npos ? arg.substr(2) : arg.substr(2, eq - 2);
    if (values_.find(key) == values_.end()) {
      std::fprintf(stderr, "unknown flag --%s\n", key.c_str());
      std::exit(2);
    }
    values_[key] = eq == std::string::npos ? "1" : arg.substr(eq + 1);
  }
}

uint64_t Flags::GetInt(const std::string& key) const {
  return std::strtoull(values_.at(key).c_str(), nullptr, 10);
}

double Flags::GetDouble(const std::string& key) const {
  return std::strtod(values_.at(key).c_str(), nullptr);
}

std::string Flags::GetString(const std::string& key) const {
  return values_.at(key);
}

// ---------------------------------------------------------------------------
// Series
// ---------------------------------------------------------------------------

double StepSeries::ValueAt(double x) const {
  double y = 0.0;
  for (const auto& [px, py] : points_) {
    if (px > x) break;
    y = py;
  }
  return y;
}

Aggregate AggregateAt(const std::vector<StepSeries>& series, double x) {
  Aggregate agg;
  if (series.empty()) return agg;
  agg.min = 1e300;
  agg.max = -1e300;
  for (const StepSeries& s : series) {
    double v = s.ValueAt(x);
    agg.mean += v;
    agg.min = std::min(agg.min, v);
    agg.max = std::max(agg.max, v);
  }
  agg.mean /= static_cast<double>(series.size());
  return agg;
}

RunResult RunTimed(sampling::SampleStream* stream,
                   const io::DiskDevice& device, double max_ms,
                   const std::function<uint64_t()>& gauge_fn) {
  RunResult result;
  result.samples.Add(0.0, 0.0);
  while (!stream->done() && device.clock().NowMs() < max_ms) {
    auto batch = stream->NextBatch();
    MSV_CHECK_MSG(batch.ok(), std::string(batch.status().message()));
    double now = device.clock().NowMs();
    result.samples.Add(now, static_cast<double>(stream->samples_returned()));
    if (gauge_fn) {
      result.gauge.Add(now, static_cast<double>(gauge_fn()));
    }
  }
  result.total_samples = stream->samples_returned();
  result.completed = stream->done();
  return result;
}

// ---------------------------------------------------------------------------
// Output
// ---------------------------------------------------------------------------

void WriteCsv(const std::string& name,
              const std::vector<std::string>& header,
              const std::vector<std::vector<double>>& rows) {
  std::filesystem::create_directories("bench_results");
  std::ofstream out("bench_results/" + name);
  for (size_t i = 0; i < header.size(); ++i) {
    out << (i ? "," : "") << header[i];
  }
  out << "\n";
  for (const auto& row : rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      out << (i ? "," : "") << row[i];
    }
    out << "\n";
  }
  std::fprintf(stderr, "[wrote bench_results/%s]\n", name.c_str());
}

namespace {
/// Best-effort `git rev-parse --short HEAD`, so every BENCH_*.json pins
/// the source revision it was measured at. "unknown" outside a checkout.
std::string GitShaOrUnknown() {
  std::string sha = "unknown";
  if (FILE* pipe = ::popen("git rev-parse --short HEAD 2>/dev/null", "r")) {
    char buf[64];
    if (std::fgets(buf, sizeof(buf), pipe) != nullptr) {
      std::string line(buf);
      while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
        line.pop_back();
      }
      if (!line.empty()) sha = line;
    }
    ::pclose(pipe);
  }
  return sha;
}
}  // namespace

void WriteBenchJson(const std::string& name, const obs::Json& numbers) {
  obs::Json record = obs::Json::Object();
  record["bench"] = obs::Json(name);
  record["git_sha"] = obs::Json(GitShaOrUnknown());
  record["numbers"] = numbers;
  record["metrics"] = obs::MetricRegistry::Global().Snapshot().ToJson();
  std::filesystem::create_directories("bench_results");
  const std::string path = "bench_results/BENCH_" + name + ".json";
  std::ofstream out(path);
  out << record.Dump(2) << "\n";
  std::fprintf(stderr, "[wrote %s]\n", path.c_str());
}

void PrintTable(const std::string& title,
                const std::vector<std::string>& header,
                const std::vector<std::vector<double>>& rows) {
  std::printf("\n=== %s ===\n", title.c_str());
  for (const auto& h : header) std::printf("%16s", h.c_str());
  std::printf("\n");
  for (const auto& row : rows) {
    for (double v : row) std::printf("%16.6g", v);
    std::printf("\n");
  }
  std::fflush(stdout);
}

// ---------------------------------------------------------------------------
// BenchEnv
// ---------------------------------------------------------------------------

BenchEnv::BenchEnv(Options options)
    : options_(options), env_(io::NewMemEnv()) {
  layout_ = options_.dims == 1 ? storage::SaleRecord::Layout1D()
                               : storage::SaleRecord::Layout2D();
  relation::SaleGenOptions gen;
  gen.num_records = options_.records;
  gen.seed = options_.seed;
  gen.day_max = options_.day_max;
  gen.amount_max = options_.amount_max;
  std::fprintf(stderr, "[generating %llu records...]\n",
               static_cast<unsigned long long>(options_.records));
  Status st = relation::GenerateSaleRelation(env_.get(), kSale, gen);
  MSV_CHECK_MSG(st.ok(), st.ToString());
}

uint64_t BenchEnv::relation_bytes() const {
  return options_.records * storage::SaleRecord::kSize;
}

double BenchEnv::ScanMs() const {
  io::DiskDevice probe;  // default (paper) parameters
  return probe.SequentialScanMs(relation_bytes());
}

size_t BenchEnv::PoolPages() const {
  double bytes = options_.buffer_fraction *
                 static_cast<double>(relation_bytes());
  return std::max<size_t>(
      4, static_cast<size_t>(bytes / static_cast<double>(options_.page_size)));
}

void BenchEnv::BuildPermuted() {
  if (env_->FileExists(kPermuted).value_or(false)) return;
  std::fprintf(stderr, "[building randomly permuted file...]\n");
  permuted::PermuteOptions options;
  options.seed = options_.seed + 1;
  Status st = permuted::BuildPermutedFile(env_.get(), kSale, kPermuted,
                                          options);
  MSV_CHECK_MSG(st.ok(), st.ToString());
}

void BenchEnv::BuildBTree() {
  if (env_->FileExists(kBTree).value_or(false)) return;
  std::fprintf(stderr, "[building ranked B+-tree...]\n");
  btree::BTreeOptions options;
  options.page_size = options_.page_size;
  Status st = btree::BuildRankedBTree(env_.get(), kSale, kBTree, layout_,
                                      options);
  MSV_CHECK_MSG(st.ok(), st.ToString());
}

void BenchEnv::BuildRTree() {
  if (env_->FileExists(kRTree).value_or(false)) return;
  std::fprintf(stderr, "[building STR R-tree...]\n");
  rtree::RTreeOptions options;
  options.page_size = options_.page_size;
  options.dims = 2;
  Status st = rtree::BuildRTree(env_.get(), kSale, kRTree, layout_, options);
  MSV_CHECK_MSG(st.ok(), st.ToString());
}

void BenchEnv::BuildAce(uint32_t height) {
  if (env_->FileExists(kAce).value_or(false)) return;
  std::fprintf(stderr, "[building ACE tree...]\n");
  core::AceBuildOptions options;
  options.page_size = options_.page_size;
  options.height = height;
  options.key_dims = options_.dims;
  options.seed = options_.seed + 2;
  Status st = core::BuildAceTree(env_.get(), kSale, kAce, layout_, options);
  MSV_CHECK_MSG(st.ok(), st.ToString());
}

std::shared_ptr<io::DiskDevice> BenchEnv::NewDevice() {
  return std::make_shared<io::DiskDevice>(io::DiskModelOptions{});
}

std::unique_ptr<io::Env> BenchEnv::TimedEnv(
    std::shared_ptr<io::DiskDevice> device) {
  return io::NewSimEnv(env_.get(), std::move(device));
}

}  // namespace msv::bench
