// Serving benchmark: closed-loop load against the MSVQL TCP server.
//
// Starts an in-process serve::Server over an in-memory catalog (one SALE
// table, one day-indexed sample view), then sweeps concurrent session
// counts (default 100, 1000, 10000). Each session is one TCP connection
// driving one request at a time (closed loop; --think-ms adds per-session
// pacing for an open-ish load shape). The request mix exercises all three
// query classes the server distinguishes:
//
//   * plain      ESTIMATE ... SAMPLES 256            (fixed work)
//   * deadline   ESTIMATE ... WITHIN <deadline> MS   (bounded time)
//   * bounded    ESTIMATE ... WITHIN <pct> %         (bounded error)
//
// Per sweep point it reports client-observed throughput, p50/p95/p99
// latency, the overload-rejection rate (typed "overload" responses over
// all responses) and the deadline-compliance rate: the fraction of
// deadline-bounded estimates whose executor-measured elapsed_us stayed
// within deadline + --slack-ms. Results go to
// bench_results/BENCH_serving.json; --smoke=1 shrinks the sweep and
// asserts compliance >= 99%, wiring the bound into CI.

#include <poll.h>
#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "harness.h"
#include "io/env.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "query/executor.h"
#include "serve/client.h"
#include "serve/server.h"
#include "util/logging.h"
#include "util/random.h"

namespace msv::bench {
namespace {

uint64_t NowUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Raises RLIMIT_NOFILE towards `wanted` descriptors; returns the usable
/// ceiling after the attempt.
uint64_t RaiseFdLimit(uint64_t wanted) {
  rlimit lim{};
  if (getrlimit(RLIMIT_NOFILE, &lim) != 0) return 1024;
  if (lim.rlim_cur < wanted) {
    rlimit raised = lim;
    raised.rlim_cur = std::min<rlim_t>(wanted, lim.rlim_max);
    if (setrlimit(RLIMIT_NOFILE, &raised) == 0) lim = raised;
  }
  return lim.rlim_cur;
}

struct Mix {
  double deadline_fraction = 0.3;
  double bounded_fraction = 0.2;
  uint64_t deadline_ms = 10;
  double within_pct = 5.0;
};

/// One load-generator connection (driver-thread local).
struct Session {
  std::unique_ptr<serve::Client> client;
  serve::FrameDecoder decoder;
  uint64_t sent_us = 0;
  uint64_t next_send_us = 0;  ///< 0 = send immediately
  bool outstanding = false;
  bool is_deadline = false;
  bool alive = true;
};

struct DriverStats {
  std::vector<uint64_t> latencies_us;
  uint64_t responses = 0;
  uint64_t rejected = 0;
  uint64_t errors = 0;
  uint64_t deadline_total = 0;
  uint64_t deadline_compliant = 0;
  uint64_t dropped_sessions = 0;
};

std::string NextStatement(Pcg64* rng, const Mix& mix, Session* session) {
  const double day_lo = static_cast<double>(rng->Below(90000));
  const double day_hi = day_lo + 10000;
  const double roll =
      static_cast<double>(rng->Below(1000000)) / 1000000.0;
  char buf[256];
  session->is_deadline = false;
  if (roll < mix.deadline_fraction) {
    session->is_deadline = true;
    std::snprintf(buf, sizeof(buf),
                  "ESTIMATE AVG(amount) FROM sv WHERE day BETWEEN %.0f AND "
                  "%.0f WITHIN %llu MS;",
                  day_lo, day_hi,
                  static_cast<unsigned long long>(mix.deadline_ms));
  } else if (roll < mix.deadline_fraction + mix.bounded_fraction) {
    std::snprintf(buf, sizeof(buf),
                  "ESTIMATE AVG(amount) FROM sv WHERE day BETWEEN %.0f AND "
                  "%.0f WITHIN %.1f%%;",
                  day_lo, day_hi, mix.within_pct);
  } else {
    std::snprintf(buf, sizeof(buf),
                  "ESTIMATE AVG(amount) FROM sv WHERE day BETWEEN %.0f AND "
                  "%.0f SAMPLES 256;",
                  day_lo, day_hi);
  }
  return buf;
}

void HandleResponse(const obs::Json& doc, uint64_t latency_us,
                    uint64_t slack_us, Session* session, DriverStats* stats) {
  stats->responses++;
  stats->latencies_us.push_back(latency_us);
  const obs::Json* ok = doc.Find("ok");
  if (ok != nullptr && ok->type() == obs::Json::Type::kBool && !ok->AsBool()) {
    std::string kind;
    if (const obs::Json* error = doc.Find("error")) {
      if (const obs::Json* k = error->Find("kind")) kind = k->AsString();
    }
    if (kind == "overload") {
      stats->rejected++;
    } else {
      stats->errors++;
    }
    return;
  }
  if (session->is_deadline) {
    stats->deadline_total++;
    const obs::Json* estimate = doc.Find("estimate");
    if (estimate != nullptr) {
      const obs::Json* deadline = estimate->Find("deadline_us");
      const obs::Json* elapsed = estimate->Find("elapsed_us");
      if (deadline != nullptr && elapsed != nullptr &&
          elapsed->AsNumber() <= deadline->AsNumber() +
                                     static_cast<double>(slack_us)) {
        stats->deadline_compliant++;
      }
    }
  }
}

/// Drives `sessions` connections in one poll loop until `deadline_us`.
void DriveSessions(std::vector<Session>* sessions, uint64_t seed,
                   const Mix& mix, uint64_t think_us, uint64_t slack_us,
                   uint64_t deadline_us, DriverStats* stats) {
  Pcg64 rng(seed);
  std::vector<pollfd> pfds;
  std::vector<size_t> polled;
  char buf[64 << 10];
  while (NowUs() < deadline_us) {
    pfds.clear();
    polled.clear();
    const uint64_t now = NowUs();
    for (size_t i = 0; i < sessions->size(); ++i) {
      Session& session = (*sessions)[i];
      if (!session.alive) continue;
      if (!session.outstanding &&
          (session.next_send_us == 0 || now >= session.next_send_us)) {
        const std::string statement = NextStatement(&rng, mix, &session);
        session.sent_us = now;
        if (!session.client->Send(i, statement).ok()) {
          session.alive = false;
          stats->dropped_sessions++;
          continue;
        }
        session.outstanding = true;
      }
      if (session.outstanding) {
        pfds.push_back({session.client->fd(), POLLIN, 0});
        polled.push_back(i);
      }
    }
    if (pfds.empty()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      continue;
    }
    const int rc = ::poll(pfds.data(), pfds.size(), 50);
    if (rc <= 0) continue;
    for (size_t p = 0; p < polled.size(); ++p) {
      if ((pfds[p].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      Session& session = (*sessions)[polled[p]];
      const ssize_t n = ::read(session.client->fd(), buf, sizeof(buf));
      if (n <= 0) {
        session.alive = false;
        stats->dropped_sessions++;
        continue;
      }
      session.decoder.Feed(buf, static_cast<size_t>(n));
      std::string payload;
      while (session.decoder.Next(&payload) ==
             serve::FrameDecoder::Outcome::kFrame) {
        auto doc = obs::Json::Parse(payload);
        if (doc.ok()) {
          HandleResponse(*doc, NowUs() - session.sent_us, slack_us, &session,
                         stats);
        }
        session.outstanding = false;
        session.next_send_us = think_us == 0 ? 0 : NowUs() + think_us;
      }
    }
  }
}

double PercentileUs(std::vector<uint64_t>* latencies, double p) {
  if (latencies->empty()) return 0.0;
  const size_t index = std::min(
      latencies->size() - 1,
      static_cast<size_t>(p / 100.0 * static_cast<double>(latencies->size())));
  std::nth_element(latencies->begin(),
                   latencies->begin() + static_cast<ptrdiff_t>(index),
                   latencies->end());
  return static_cast<double>((*latencies)[index]);
}

}  // namespace

int Run(int argc, char** argv) {
  Flags flags(argc, argv, {{"rows", "200000"},
                           {"sessions", "100,1000,10000"},
                           {"duration-s", "10"},
                           {"workers", "0"},
                           {"queue", "256"},
                           {"drivers", "0"},
                           {"deadline-ms", "10"},
                           {"within-pct", "5"},
                           {"slack-ms", "100"},
                           {"think-ms", "0"},
                           {"seed", "42"},
                           {"smoke", "0"}});
  const bool smoke = flags.GetInt("smoke") != 0;
  // Worker/driver defaults track the hardware: oversubscribing a small
  // box turns scheduler preemption into apparent deadline overrun (the
  // --slack-ms allowance covers the residual jitter).
  const uint64_t hw = std::max(1u, std::thread::hardware_concurrency());
  const uint64_t workers =
      flags.GetInt("workers") != 0 ? flags.GetInt("workers") : std::max<uint64_t>(2, hw);
  const uint64_t driver_default = smoke ? 2 : std::max<uint64_t>(2, hw);
  const uint64_t drivers_flag =
      flags.GetInt("drivers") != 0 ? flags.GetInt("drivers") : driver_default;
  const uint64_t rows = smoke ? 50'000 : flags.GetInt("rows");
  const double duration_s =
      smoke ? 2.0 : static_cast<double>(flags.GetInt("duration-s"));

  std::vector<uint64_t> sweep;
  {
    const std::string spec =
        smoke ? "64,256" : flags.GetString("sessions");
    size_t pos = 0;
    while (pos < spec.size()) {
      size_t comma = spec.find(',', pos);
      if (comma == std::string::npos) comma = spec.size();
      sweep.push_back(std::strtoull(spec.substr(pos, comma - pos).c_str(),
                                    nullptr, 10));
      pos = comma + 1;
    }
  }

  Mix mix;
  mix.deadline_ms = flags.GetInt("deadline-ms");
  mix.within_pct = flags.GetDouble("within-pct");
  const uint64_t slack_us = flags.GetInt("slack-ms") * 1000;
  const uint64_t think_us = flags.GetInt("think-ms") * 1000;
  const uint64_t seed = flags.GetInt("seed");

  const uint64_t max_sessions =
      *std::max_element(sweep.begin(), sweep.end());
  const uint64_t fd_limit = RaiseFdLimit(2 * max_sessions + 512);
  for (uint64_t& s : sweep) {
    if (2 * s + 256 > fd_limit) {
      const uint64_t clamped = (fd_limit - 256) / 2;
      std::printf("serving: fd limit %llu clamps %llu sessions to %llu\n",
                  static_cast<unsigned long long>(fd_limit),
                  static_cast<unsigned long long>(s),
                  static_cast<unsigned long long>(clamped));
      s = clamped;
    }
  }

  // Server over an in-memory catalog.
  auto env = io::NewMemEnv();
  auto executor = query::Executor::Open(env.get());
  MSV_CHECK_MSG(executor.ok(), "executor open failed");
  auto bootstrap = (*executor)->Run(
      "GENERATE TABLE sale ROWS " + std::to_string(rows) +
      " SEED " + std::to_string(seed) +
      "; CREATE MATERIALIZED SAMPLE VIEW sv AS SELECT * FROM sale INDEX ON "
      "day;");
  MSV_CHECK_MSG(bootstrap.ok(), "bootstrap failed");

  serve::ServerOptions server_options;
  server_options.port = 0;
  server_options.workers = static_cast<int>(workers);
  server_options.max_queue = flags.GetInt("queue");
  serve::Server server(executor->get(), server_options);
  MSV_CHECK_MSG(server.Start().ok(), "server start failed");

  obs::Json points = obs::Json::Array();
  std::vector<std::vector<double>> table;

  for (uint64_t session_count : sweep) {
    const uint64_t drivers =
        std::min<uint64_t>(drivers_flag, session_count);
    std::vector<std::vector<Session>> per_driver(drivers);
    uint64_t connected = 0;
    for (uint64_t i = 0; i < session_count; ++i) {
      auto client = serve::Client::Connect("127.0.0.1", server.port());
      if (!client.ok()) break;  // fd exhaustion: drive what we have
      Session session;
      session.client = std::move(*client);
      per_driver[i % drivers].push_back(std::move(session));
      ++connected;
    }
    if (connected < session_count) {
      std::printf("serving: connected %llu of %llu sessions\n",
                  static_cast<unsigned long long>(connected),
                  static_cast<unsigned long long>(session_count));
    }

    std::vector<DriverStats> stats(drivers);
    const uint64_t start_us = NowUs();
    const uint64_t deadline_us =
        start_us + static_cast<uint64_t>(duration_s * 1e6);
    std::vector<std::thread> threads;
    threads.reserve(drivers);
    for (uint64_t d = 0; d < drivers; ++d) {
      threads.emplace_back([&, d] {
        DriveSessions(&per_driver[d], seed + d, mix, think_us, slack_us,
                      deadline_us, &stats[d]);
      });
    }
    for (auto& t : threads) t.join();
    const double elapsed_s =
        static_cast<double>(NowUs() - start_us) / 1e6;
    per_driver.clear();  // closes this sweep point's connections

    DriverStats total;
    for (auto& s : stats) {
      total.responses += s.responses;
      total.rejected += s.rejected;
      total.errors += s.errors;
      total.deadline_total += s.deadline_total;
      total.deadline_compliant += s.deadline_compliant;
      total.dropped_sessions += s.dropped_sessions;
      total.latencies_us.insert(total.latencies_us.end(),
                                s.latencies_us.begin(), s.latencies_us.end());
    }
    const double throughput =
        elapsed_s > 0 ? static_cast<double>(total.responses) / elapsed_s : 0;
    const double p50 = PercentileUs(&total.latencies_us, 50);
    const double p95 = PercentileUs(&total.latencies_us, 95);
    const double p99 = PercentileUs(&total.latencies_us, 99);
    const double rejection_rate =
        total.responses > 0
            ? static_cast<double>(total.rejected) /
                  static_cast<double>(total.responses)
            : 0;
    const double compliance =
        total.deadline_total > 0
            ? static_cast<double>(total.deadline_compliant) /
                  static_cast<double>(total.deadline_total)
            : 1.0;

    obs::Json point = obs::Json::Object();
    point["sessions"] = connected;
    point["duration_s"] = elapsed_s;
    point["responses"] = total.responses;
    point["throughput_rps"] = throughput;
    point["p50_us"] = p50;
    point["p95_us"] = p95;
    point["p99_us"] = p99;
    point["rejected"] = total.rejected;
    point["rejection_rate"] = rejection_rate;
    point["exec_errors"] = total.errors;
    point["deadline_total"] = total.deadline_total;
    point["deadline_compliant"] = total.deadline_compliant;
    point["deadline_compliance"] = compliance;
    point["dropped_sessions"] = total.dropped_sessions;
    points.Append(std::move(point));
    table.push_back({static_cast<double>(connected), throughput, p50, p95,
                     p99, rejection_rate, compliance});

    if (smoke && total.deadline_total > 0) {
      MSV_CHECK_MSG(compliance >= 0.99,
                    "deadline compliance below 99% in smoke run");
    }
  }

  server.Stop();

  PrintTable("serving (closed-loop, " + std::to_string(duration_s) +
                 "s per point)",
             {"sessions", "rps", "p50_us", "p95_us", "p99_us", "rej_rate",
              "ddl_comp"},
             table);

  obs::Json numbers = obs::Json::Object();
  numbers["rows"] = rows;
  numbers["deadline_ms"] = mix.deadline_ms;
  numbers["within_pct"] = mix.within_pct;
  numbers["slack_us"] = slack_us;
  numbers["smoke"] = smoke;
  numbers["points"] = std::move(points);
  WriteBenchJson("serving", numbers);
  return 0;
}

}  // namespace msv::bench

int main(int argc, char** argv) { return msv::bench::Run(argc, argv); }
