// Validates Lemma 1 of the paper: after m leaf nodes have been retrieved
// for a query covering fraction alpha of the records (m <= 2*alpha*n + 2),
// the expected number of samples obtained satisfies
//     E[N] >= (mu / 2) * m * log2(m)
// where mu is the mean section size. We measure the actual cumulative
// sample count after each stab, averaged over queries, and print it next
// to the bound.

#include <cmath>
#include <cstdio>

#include "core/ace_sampler.h"
#include "core/ace_tree.h"
#include "harness.h"
#include "relation/workload.h"
#include "util/logging.h"

namespace msv::bench {
namespace {

int Main(int argc, char** argv) {
  Flags flags(argc, argv,
              {{"records", "200000"},
               {"height", "8"},
               {"queries", "20"},
               {"selectivity", "0.5"},
               {"seed", "42"}});
  BenchEnv::Options options;
  options.records = flags.GetInt("records");
  options.seed = flags.GetInt("seed");
  BenchEnv env(options);
  const uint32_t height = static_cast<uint32_t>(flags.GetInt("height"));
  env.BuildAce(height);

  auto tree_or =
      core::AceTree::Open(env.raw_env(), BenchEnv::kAce, env.layout());
  MSV_CHECK(tree_or.ok());
  auto tree = std::move(tree_or).value();

  const uint64_t leaves = tree->meta().num_leaves;
  const double mu =
      static_cast<double>(options.records) /
      (static_cast<double>(height) * static_cast<double>(leaves));
  const double selectivity = flags.GetDouble("selectivity");
  const size_t num_queries = flags.GetInt("queries");
  const uint64_t max_m = std::min<uint64_t>(
      leaves, static_cast<uint64_t>(2 * selectivity *
                                    static_cast<double>(leaves)) + 2);

  relation::WorkloadGenerator workload({{0.0, options.day_max}},
                                       options.seed + 5);
  std::vector<double> avg_samples(max_m + 1, 0.0);
  for (size_t qi = 0; qi < num_queries; ++qi) {
    auto q = workload.Query(selectivity, 1);
    core::AceSampler sampler(tree.get(), q, options.seed + qi);
    for (uint64_t m = 1; m <= max_m && !sampler.done(); ++m) {
      auto batch = sampler.NextBatch();
      MSV_CHECK(batch.ok());
      avg_samples[m] += static_cast<double>(sampler.samples_returned());
    }
  }
  for (auto& v : avg_samples) v /= static_cast<double>(num_queries);

  std::vector<std::vector<double>> rows;
  for (uint64_t m = 1; m <= max_m; ++m) {
    double bound =
        (mu / 2.0) * static_cast<double>(m) * std::log2(static_cast<double>(m));
    rows.push_back({static_cast<double>(m), avg_samples[m], bound,
                    bound > 0 ? avg_samples[m] / bound : 0.0});
  }
  std::vector<std::string> header{"leaves_read_m", "measured_E[N]",
                                  "lemma1_lower_bound", "ratio"};
  PrintTable("lemma1: measured samples vs (mu/2) m log2 m lower bound "
             "(ratio must stay >= 1)",
             header, rows);
  WriteCsv("lemma1.csv", header, rows);

  // Machine-checkable verdict. The paper proves the bound "if m is a
  // power of 2" (end of the Lemma 1 proof); between powers of two the
  // smooth m*log2(m) interpolation can transiently exceed the combine
  // engine's round-quantized output, so we check at powers of two, with a
  // small slack for sampling noise in the per-query average.
  bool ok = true;
  for (uint64_t m = 2; m <= max_m; m *= 2) {
    double bound = (mu / 2.0) * static_cast<double>(m) *
                   std::log2(static_cast<double>(m));
    if (avg_samples[m] < bound * 0.95) ok = false;
  }
  std::printf("\nlemma1 bound %s (at power-of-two m, as proven)\n",
              ok ? "HOLDS" : "VIOLATED");
  return 0;  // informational: the table is the artifact
}

}  // namespace
}  // namespace msv::bench

int main(int argc, char** argv) { return msv::bench::Main(argc, argv); }
