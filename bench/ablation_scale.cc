// Scale-trend ablation (not a paper figure; documents the reproduction's
// one scale-dependent distortion).
//
// The ACE tree's early sampling rate relative to the permuted file grows
// with relation size: after m leaf retrievals the tree has emitted roughly
// (mu/2) * m * log2(m) samples, and in normalized coordinates the
// amortization factor log2(m)/h grows with scale (the paper's 200M-record
// experiments sit near log2(m)/h ~ 0.56; a 2M-record laptop run sits near
// 0.3). This bench sweeps the relation size and reports the ACE-to-
// permuted sampling ratio at fixed fractions of scan time, demonstrating
// the trend toward the paper's magnitudes.

#include <cstdio>
#include <memory>

#include "core/ace_sampler.h"
#include "core/ace_tree.h"
#include "harness.h"
#include "permuted/permuted_file.h"
#include "relation/workload.h"
#include "storage/heap_file.h"
#include "util/logging.h"

namespace msv::bench {
namespace {

int Main(int argc, char** argv) {
  Flags flags(argc, argv,
              {{"selectivity", "0.025"},
               {"queries", "5"},
               {"seed", "42"},
               {"max_records", "4000000"}});
  const double selectivity = flags.GetDouble("selectivity");
  const size_t num_queries = flags.GetInt("queries");
  const uint64_t max_records = flags.GetInt("max_records");

  std::vector<std::vector<double>> rows;
  for (uint64_t n = 250'000; n <= max_records; n *= 2) {
    BenchEnv::Options options;
    options.records = n;
    options.seed = flags.GetInt("seed");
    BenchEnv env(options);
    env.BuildAce();
    env.BuildPermuted();
    const double scan_ms = env.ScanMs();

    relation::WorkloadGenerator workload({{0.0, options.day_max}},
                                         options.seed + 9);
    auto queries = workload.Queries(selectivity, 1, num_queries);

    double ace_at[2] = {0, 0};   // samples at 2% and 4% of scan
    double perm_at[2] = {0, 0};
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      {
        auto device = BenchEnv::NewDevice();
        auto timed = env.TimedEnv(device);
        auto tree = std::move(core::AceTree::Open(timed.get(), BenchEnv::kAce,
                                                  env.layout()))
                        .value();
        core::AceSampler sampler(tree.get(), queries[qi], qi);
        device->clock().Reset();
        RunResult r = RunTimed(&sampler, *device, scan_ms * 0.04);
        ace_at[0] += r.samples.ValueAt(scan_ms * 0.02);
        ace_at[1] += r.samples.ValueAt(scan_ms * 0.04);
      }
      {
        auto device = BenchEnv::NewDevice();
        auto timed = env.TimedEnv(device);
        auto file = std::move(storage::HeapFile::Open(timed.get(),
                                                      BenchEnv::kPermuted))
                        .value();
        permuted::PermutedFileSampler sampler(file.get(), env.layout(),
                                              queries[qi], 128 << 10);
        device->clock().Reset();
        RunResult r = RunTimed(&sampler, *device, scan_ms * 0.04);
        perm_at[0] += r.samples.ValueAt(scan_ms * 0.02);
        perm_at[1] += r.samples.ValueAt(scan_ms * 0.04);
      }
    }
    rows.push_back({static_cast<double>(n),
                    perm_at[0] > 0 ? ace_at[0] / perm_at[0] : 0,
                    perm_at[1] > 0 ? ace_at[1] / perm_at[1] : 0});
  }
  std::vector<std::string> header{"records", "ace_over_permuted_at_2pct",
                                  "ace_over_permuted_at_4pct"};
  PrintTable(
      "scale ablation: ACE-tree advantage over the permuted file grows "
      "with relation size (selectivity " +
          std::to_string(selectivity) + ")",
      header, rows);
  WriteCsv("ablation_scale.csv", header, rows);
  return 0;
}

}  // namespace
}  // namespace msv::bench

int main(int argc, char** argv) { return msv::bench::Main(argc, argv); }
