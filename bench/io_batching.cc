// Batched-I/O A/B study: what coalesced multi-page reads buy under the
// simulated disk.
//
// Part 1 sweeps the serial AceSampler's io_batch_window over a
// fig14-style full-drain workload (2.5% selectivity, run to completion).
// Window 1 is the historical leaf-at-a-time path; wider windows fetch
// the in-flight stab set per batched read in elevator order, so runs of
// physically adjacent leaves collapse into single modeled accesses;
// window 0 drains the whole stab order in one batch. The emitted sample
// stream is byte-identical at every window (pinned by determinism_test);
// only the I/O schedule — and therefore the modeled time — changes.
//
// Part 2 A/Bs construction with SortOptions.batched_io on and off: the
// double-buffered TPMMS merge readahead and batched run/leaf writes for
// both ACE build passes and the permuted-file baseline.
//
// The ">= 2x modeled disk-time reduction" acceptance criterion for the
// full-drain sweep is asserted in-process: the bench aborts if batching
// stops paying for itself.

#include <cstdio>
#include <memory>
#include <vector>

#include "core/ace_builder.h"
#include "core/ace_sampler.h"
#include "core/ace_tree.h"
#include "harness.h"
#include "permuted/permuted_file.h"
#include "relation/workload.h"
#include "util/logging.h"

namespace msv::bench {
namespace {

int Main(int argc, char** argv) {
  Flags flags(argc, argv,
              {{"records", "500000"},
               {"queries", "3"},
               {"page", "65536"},
               {"seed", "42"},
               {"selectivity", "0.025"},
               {"smoke", "0"}});
  const bool smoke = flags.GetInt("smoke") != 0;

  BenchEnv::Options options;
  options.records = smoke ? 100'000 : flags.GetInt("records");
  options.page_size = flags.GetInt("page");
  options.seed = flags.GetInt("seed");
  options.dims = 1;
  BenchEnv env(options);
  env.BuildAce();

  const double scan_ms = env.ScanMs();
  const size_t num_queries = smoke ? 2 : flags.GetInt("queries");
  relation::WorkloadGenerator workload(
      {{0.0, options.day_max}, {0.0, options.amount_max}}, options.seed + 9);
  auto queries =
      workload.Queries(flags.GetDouble("selectivity"), 1, num_queries);

  // ---- Part 1: full-drain window sweep.
  struct SweepPoint {
    size_t window;
    double mean_completion_ms = 0;
    uint64_t busy_us = 0;
    uint64_t seeks = 0;
    uint64_t batched_accesses = 0;
    uint64_t batched_pages = 0;
  };
  const std::vector<size_t> windows = {1, 4, 16, 0};  // 0 = full drain
  std::vector<SweepPoint> sweep;
  for (size_t window : windows) {
    SweepPoint point;
    point.window = window;
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      auto device = BenchEnv::NewDevice();
      auto timed = env.TimedEnv(device);
      auto tree_or =
          core::AceTree::Open(timed.get(), BenchEnv::kAce, env.layout());
      MSV_CHECK(tree_or.ok());
      auto tree = std::move(tree_or).value();
      core::AceSamplerOptions sampler_options;
      sampler_options.io_batch_window = window;
      core::AceSampler sampler(tree.get(), queries[qi], options.seed + qi,
                               sampler_options);
      device->clock().Reset();
      device->ResetStats();
      RunResult r = RunTimed(&sampler, *device, /*max_ms=*/1e15);
      MSV_CHECK(r.completed);
      point.mean_completion_ms += device->clock().NowMs();
      io::DiskStats stats = device->stats();
      point.busy_us += stats.busy_us;
      point.seeks += stats.seeks;
      point.batched_accesses += stats.batched_accesses;
      point.batched_pages += stats.batched_pages;
    }
    point.mean_completion_ms /= static_cast<double>(queries.size());
    sweep.push_back(point);
  }

  std::vector<std::vector<double>> sweep_rows;
  for (const SweepPoint& p : sweep) {
    double coalesce =
        p.batched_accesses
            ? static_cast<double>(p.batched_pages) /
                  static_cast<double>(p.batched_accesses)
            : 0.0;
    sweep_rows.push_back({static_cast<double>(p.window),
                          p.mean_completion_ms,
                          p.mean_completion_ms / scan_ms * 100.0,
                          static_cast<double>(p.busy_us) / 1000.0,
                          static_cast<double>(p.seeks), coalesce});
  }
  std::vector<std::string> sweep_header{"window",       "completion_ms",
                                        "pct_scan",     "disk_busy_ms",
                                        "seeks",        "coalesce_ratio"};
  PrintTable("ACE full-drain window sweep (window 0 = whole stab order)",
             sweep_header, sweep_rows);
  WriteCsv("io_batching_sweep.csv", sweep_header, sweep_rows);

  // ---- Part 2: construction A/B (batched_io on/off).
  auto build_ms = [&](bool batched_io) {
    obs::Json entry = obs::Json::Object();
    {
      auto device = BenchEnv::NewDevice();
      auto timed = env.TimedEnv(device);
      core::AceBuildOptions build;
      build.page_size = options.page_size;
      build.seed = options.seed + 2;
      build.sort.batched_io = batched_io;
      const char* name = batched_io ? "ace.batched" : "ace.scalar";
      MSV_CHECK(core::BuildAceTree(timed.get(), BenchEnv::kSale, name,
                                   env.layout(), build)
                    .ok());
      entry["ace_build_ms"] = obs::Json(device->clock().NowMs());
    }
    {
      auto device = BenchEnv::NewDevice();
      auto timed = env.TimedEnv(device);
      permuted::PermuteOptions perm;
      perm.seed = options.seed + 1;
      perm.sort.batched_io = batched_io;
      const char* name = batched_io ? "perm.batched" : "perm.scalar";
      MSV_CHECK(
          permuted::BuildPermutedFile(timed.get(), BenchEnv::kSale, name, perm)
              .ok());
      entry["permuted_build_ms"] = obs::Json(device->clock().NowMs());
    }
    return entry;
  };
  obs::Json build_on = build_ms(/*batched_io=*/true);
  obs::Json build_off = build_ms(/*batched_io=*/false);
  std::printf("\nconstruction (modeled ms): ace %.1f -> %.1f, permuted "
              "%.1f -> %.1f with batching\n",
              build_off["ace_build_ms"].AsNumber(),
              build_on["ace_build_ms"].AsNumber(),
              build_off["permuted_build_ms"].AsNumber(),
              build_on["permuted_build_ms"].AsNumber());

  // ---- Machine-readable record.
  obs::Json numbers = obs::Json::Object();
  numbers["records"] = obs::Json(options.records);
  numbers["queries"] = obs::Json(static_cast<uint64_t>(queries.size()));
  numbers["selectivity"] = obs::Json(flags.GetDouble("selectivity"));
  numbers["page"] = obs::Json(static_cast<uint64_t>(options.page_size));
  numbers["scan_ms"] = obs::Json(scan_ms);
  numbers["smoke"] = obs::Json(smoke);
  obs::Json sweep_json = obs::Json::Array();
  for (size_t i = 0; i < sweep.size(); ++i) {
    obs::Json entry = obs::Json::Object();
    for (size_t c = 0; c < sweep_header.size(); ++c) {
      entry[sweep_header[c]] = obs::Json(sweep_rows[i][c]);
    }
    sweep_json.Append(std::move(entry));
  }
  numbers["window_sweep"] = std::move(sweep_json);
  numbers["construction_batched"] = std::move(build_on);
  numbers["construction_scalar"] = std::move(build_off);
  WriteBenchJson("io_batching", numbers);

  // ---- Acceptance criterion: full drain must at least halve the modeled
  // disk time of the leaf-at-a-time path on this workload.
  const uint64_t scalar_us = sweep.front().busy_us;  // window 1
  const uint64_t full_us = sweep.back().busy_us;     // window 0
  std::printf("\nfull-drain disk time %.1f ms vs leaf-at-a-time %.1f ms "
              "(%.1fx)\n",
              static_cast<double>(full_us) / 1000.0,
              static_cast<double>(scalar_us) / 1000.0,
              static_cast<double>(scalar_us) /
                  static_cast<double>(full_us ? full_us : 1));
  MSV_CHECK_MSG(2 * full_us <= scalar_us,
                "batched full drain did not halve modeled disk time");
  return 0;
}

}  // namespace
}  // namespace msv::bench

int main(int argc, char** argv) { return msv::bench::Main(argc, argv); }
