// Reproduces Figure 17 of the paper: Sampling rate, 2-d predicate accepting 2.5% of records.
#include "sampling_rate.h"

int main(int argc, char** argv) {
  msv::bench::SamplingRateConfig config;
  config.figure = "fig17";
  config.caption = "Sampling rate, 2-d predicate accepting 2.5% of records";
  config.selectivity = 0.025;
  config.dims = 2;
  config.max_x_pct = 2 == 1 ? 4.0 : 5.0;
  return msv::bench::RunSamplingRateBench(argc, argv, config);
}
