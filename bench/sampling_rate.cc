#include "sampling_rate.h"

#include <cstdio>
#include <cstdlib>
#include <memory>

#include "btree/btree_sampler.h"
#include "btree/ranked_btree.h"
#include "core/ace_sampler.h"
#include "core/ace_tree.h"
#include "harness.h"
#include "permuted/permuted_file.h"
#include "relation/workload.h"
#include "rtree/rtree.h"
#include "rtree/rtree_sampler.h"
#include "storage/heap_file.h"
#include "util/logging.h"

namespace msv::bench {

namespace {

struct MethodResult {
  std::string name;
  std::vector<StepSeries> series;  // one per query, x in sim-ms
  std::vector<double> completion_ms;
  bool all_completed = true;
};

// RunTimed plus a per-returned-record CPU charge on the device clock
// (record-at-a-time retrieval cost; see the comment at record_cpu_ms).
RunResult RunTimedWithCpu(sampling::SampleStream* stream,
                          io::DiskDevice* device, double max_ms,
                          double record_cpu_ms) {
  RunResult result;
  result.samples.Add(0.0, 0.0);
  while (!stream->done() && device->clock().NowMs() < max_ms) {
    auto batch = stream->NextBatch();
    MSV_CHECK(batch.ok());
    device->clock().AdvanceMs(record_cpu_ms *
                              static_cast<double>(batch.value().count()));
    result.samples.Add(device->clock().NowMs(),
                       static_cast<double>(stream->samples_returned()));
  }
  result.total_samples = stream->samples_returned();
  result.completed = stream->done();
  return result;
}

}  // namespace

int RunSamplingRateBench(int argc, char** argv,
                         const SamplingRateConfig& config) {
  Flags flags(argc, argv,
              {{"records", "2000000"},
               {"queries", "10"},
               {"page", "65536"},
               {"seed", "42"},
               {"buffer_fraction", "0.05"},
               {"pull_records", "4"},
               {"record_cpu_ms", "0.15"},
               {"io_batch", "1"},
               {"io_batch_window", "auto"},
               {"assert_min_coalesce", "0"},
               {"smoke", "0"}});
  // --smoke: CI-sized run (seconds, not minutes) that still exercises
  // every competitor and emits the BENCH_*.json record.
  const bool smoke = flags.GetInt("smoke") != 0;
  // --io_batch / --io_batch_window: batched leaf I/O for the ACE
  // sampler. "auto" drains the whole stab order in one elevator-ordered
  // batch for to-completion figures (where only total time matters) and
  // keeps the historical leaf-at-a-time path for time-bounded figures
  // (prefetching ahead of the clock would delay the early samples the
  // x-axis is plotting). An explicit number is the window; 0 = full
  // drain.
  const bool io_batch = flags.GetInt("io_batch") != 0;
  size_t io_batch_window = 1;
  if (io_batch) {
    const std::string window_flag = flags.GetString("io_batch_window");
    io_batch_window =
        window_flag == "auto"
            ? (config.to_completion ? 0 : 1)
            : static_cast<size_t>(
                  std::strtoull(window_flag.c_str(), nullptr, 10));
  }

  BenchEnv::Options options;
  options.records = smoke ? 100'000 : flags.GetInt("records");
  options.page_size = flags.GetInt("page");
  options.seed = flags.GetInt("seed");
  options.dims = config.dims;
  options.buffer_fraction = flags.GetDouble("buffer_fraction");
  BenchEnv env(options);

  env.BuildPermuted();
  env.BuildAce();
  if (config.dims == 1) {
    env.BuildBTree();
  } else {
    env.BuildRTree();
  }

  const double scan_ms = env.ScanMs();
  const double max_ms =
      config.to_completion ? 1e15 : scan_ms * config.max_x_pct / 100.0;
  const size_t num_queries = smoke ? 2 : flags.GetInt("queries");
  const size_t pull_records = flags.GetInt("pull_records");
  // One-record-at-a-time retrieval (Algorithm 1 and its R-tree analogue)
  // pays a per-draw CPU cost — a root-to-leaf descent plus page search —
  // even on buffer hits. The paper's B+-tree curves plateau at a few
  // thousand records/second once the relevant pages are buffered, which
  // corresponds to ~0.15 ms/record; bulk consumers (ACE section copies,
  // permuted-file scan) have this folded into the effective scan rate.
  const double record_cpu_ms = flags.GetDouble("record_cpu_ms");

  relation::WorkloadGenerator workload(
      {{0.0, options.day_max}, {0.0, options.amount_max}}, options.seed + 9);
  auto queries =
      workload.Queries(config.selectivity, config.dims, num_queries);

  std::vector<MethodResult> methods(3);
  methods[0].name = config.dims == 1 ? "ace" : "kd-ace";
  methods[1].name = config.dims == 1 ? "btree" : "rtree";
  methods[2].name = "permuted";

  // io.batch.* accounting for the ACE runs, summed across queries (each
  // query gets a fresh device, so registry deltas would mix methods).
  uint64_t ace_batched_accesses = 0;
  uint64_t ace_batched_pages = 0;

  for (size_t qi = 0; qi < queries.size(); ++qi) {
    const auto& q = queries[qi];
    std::fprintf(stderr, "[query %zu/%zu %s]\n", qi + 1, queries.size(),
                 q.ToString().c_str());

    // --- ACE tree (or k-d ACE tree).
    {
      auto device = BenchEnv::NewDevice();
      auto timed = env.TimedEnv(device);
      auto tree_or = core::AceTree::Open(timed.get(), BenchEnv::kAce,
                                         env.layout());
      MSV_CHECK(tree_or.ok());
      auto tree = std::move(tree_or).value();
      core::AceSamplerOptions sampler_options;
      sampler_options.io_batch_window = io_batch_window;
      core::AceSampler sampler(tree.get(), q, options.seed + qi,
                               sampler_options);
      // Metadata (superblock, internal nodes, directory) is resident in a
      // warm DBMS and negligible at the paper's scale; measure from here.
      device->clock().Reset();
      RunResult r = RunTimed(&sampler, *device, max_ms);
      methods[0].series.push_back(std::move(r.samples));
      methods[0].completion_ms.push_back(device->clock().NowMs());
      methods[0].all_completed &= r.completed;
      io::DiskStats ace_stats = device->stats();
      ace_batched_accesses += ace_stats.batched_accesses;
      ace_batched_pages += ace_stats.batched_pages;
    }

    // --- Ranked B+-tree (1-d) or ranked R-tree (2-d).
    {
      auto device = BenchEnv::NewDevice();
      auto timed = env.TimedEnv(device);
      io::BufferPool pool(options.page_size, env.PoolPages());
      if (config.dims == 1) {
        auto tree_or = btree::RankedBTree::Open(timed.get(), BenchEnv::kBTree,
                                                env.layout(), &pool, 1);
        MSV_CHECK(tree_or.ok());
        auto tree = std::move(tree_or).value();
        btree::BTreeSampler sampler(tree.get(), q, options.seed + qi,
                                    pull_records);
        // Warm start: the two rank descents touch only internal pages,
        // which are buffer-resident in a warm DBMS (and a negligible
        // fraction of the paper's 10 s window). Initialize, then measure.
        MSV_CHECK(sampler.NextBatch().ok());
        device->clock().Reset();
        RunResult r = RunTimedWithCpu(&sampler, device.get(), max_ms,
                                      record_cpu_ms);
        methods[1].series.push_back(std::move(r.samples));
        methods[1].completion_ms.push_back(device->clock().NowMs());
        methods[1].all_completed &= r.completed;
      } else {
        auto tree_or = rtree::RTree::Open(timed.get(), BenchEnv::kRTree,
                                          env.layout(), &pool, 1);
        MSV_CHECK(tree_or.ok());
        auto tree = std::move(tree_or).value();
        rtree::RTreeSampler sampler(tree.get(), q, options.seed + qi,
                                    pull_records);
        // Warm start symmetrical to the B+-tree: candidate collection
        // touches only internal pages.
        MSV_CHECK(sampler.NextBatch().ok());
        device->clock().Reset();
        RunResult r = RunTimedWithCpu(&sampler, device.get(), max_ms,
                                      record_cpu_ms);
        methods[1].series.push_back(std::move(r.samples));
        methods[1].completion_ms.push_back(device->clock().NowMs());
        methods[1].all_completed &= r.completed;
      }
    }

    // --- Randomly permuted file.
    {
      auto device = BenchEnv::NewDevice();
      auto timed = env.TimedEnv(device);
      auto file_or = storage::HeapFile::Open(timed.get(), BenchEnv::kPermuted);
      MSV_CHECK(file_or.ok());
      auto file = std::move(file_or).value();
      permuted::PermutedFileSampler sampler(file.get(), env.layout(), q,
                                            /*chunk_bytes=*/128 << 10);
      device->clock().Reset();
      RunResult r = RunTimed(&sampler, *device, max_ms);
      methods[2].series.push_back(std::move(r.samples));
      methods[2].completion_ms.push_back(device->clock().NowMs());
      methods[2].all_completed &= r.completed;
    }
  }

  // ---- Report.
  std::vector<double> checkpoints = config.checkpoints;
  if (checkpoints.empty()) {
    if (config.to_completion) {
      double worst = 0;
      for (const auto& m : methods) {
        for (double ms : m.completion_ms) worst = std::max(worst, ms);
      }
      double worst_pct = worst / scan_ms * 100.0;
      for (double x = 6.25; x < worst_pct * 1.05; x *= 2) {
        checkpoints.push_back(x);
      }
      checkpoints.push_back(worst_pct * 1.001);
    } else {
      for (double x = 0.25; x <= config.max_x_pct + 1e-9; x += 0.25) {
        checkpoints.push_back(x);
      }
    }
  }

  const double n = static_cast<double>(options.records);
  std::vector<std::vector<double>> rows;
  for (double x : checkpoints) {
    std::vector<double> row{x};
    for (const auto& m : methods) {
      row.push_back(AggregateAt(m.series, x / 100.0 * scan_ms).mean / n *
                    100.0);
    }
    rows.push_back(std::move(row));
  }
  std::vector<std::string> header{"pct_scan_time"};
  for (const auto& m : methods) header.push_back("pct_records_" + m.name);

  PrintTable(config.figure + ": " + config.caption, header, rows);
  WriteCsv(config.figure + ".csv", header, rows);

  // Machine-readable record: headline numbers plus the full metrics
  // registry (io.disk.*, io.pool.*, ace.* counters accumulated across
  // all queries), for CI artifact tracking.
  obs::Json numbers = obs::Json::Object();
  numbers["records"] = obs::Json(options.records);
  numbers["queries"] = obs::Json(static_cast<uint64_t>(queries.size()));
  numbers["selectivity"] = obs::Json(config.selectivity);
  numbers["dims"] = obs::Json(static_cast<uint64_t>(config.dims));
  numbers["scan_ms"] = obs::Json(scan_ms);
  numbers["smoke"] = obs::Json(smoke);
  numbers["io_batch"] = obs::Json(io_batch);
  numbers["io_batch_window"] = obs::Json(static_cast<uint64_t>(io_batch_window));
  // Modeled pages per coalesced access across all ACE runs; 0 when the
  // batched path was off (window 1 reads leaves one at a time).
  const double coalesce_ratio =
      ace_batched_accesses > 0
          ? static_cast<double>(ace_batched_pages) /
                static_cast<double>(ace_batched_accesses)
          : 0.0;
  numbers["ace_coalesce_ratio"] = obs::Json(coalesce_ratio);
  obs::Json per_method = obs::Json::Object();
  const double last_x = checkpoints.back();
  for (const auto& m : methods) {
    obs::Json entry = obs::Json::Object();
    entry["pct_records_at_last_checkpoint"] =
        obs::Json(AggregateAt(m.series, last_x / 100.0 * scan_ms).mean / n *
                  100.0);
    double mean_completion = 0;
    for (double ms : m.completion_ms) mean_completion += ms;
    entry["mean_completion_ms"] =
        obs::Json(mean_completion /
                  static_cast<double>(m.completion_ms.size()));
    entry["all_completed"] = obs::Json(m.all_completed);
    per_method[m.name] = std::move(entry);
  }
  numbers["methods"] = std::move(per_method);
  WriteBenchJson(config.figure, numbers);

  // --assert_min_coalesce: CI guard — a silently de-batched ACE read
  // path records no io.batch.* accesses at all, driving the ratio to 0
  // and failing the bench-smoke job instead of shipping a regression.
  const double min_coalesce = flags.GetDouble("assert_min_coalesce");
  if (min_coalesce > 0) {
    std::fprintf(stderr, "[ace coalesce ratio %.2f, required > %.2f]\n",
                 coalesce_ratio, min_coalesce);
    MSV_CHECK_MSG(coalesce_ratio > min_coalesce,
                  "ACE coalesce ratio below --assert_min_coalesce");
  }

  if (config.to_completion) {
    std::printf("\ncompletion time (%% of scan), averaged over queries:\n");
    for (const auto& m : methods) {
      double sum = 0;
      for (double ms : m.completion_ms) sum += ms;
      std::printf("  %-10s %8.1f%%%s\n", m.name.c_str(),
                  sum / m.completion_ms.size() / scan_ms * 100.0,
                  m.all_completed ? "" : "  (not all queries completed)");
    }
  }
  return 0;
}

}  // namespace msv::bench
