// Reproduces Figure 11 of the paper: Sampling rate, 1-d selection predicate accepting 0.25% of records (ACE vs ranked B+-tree vs permuted file).
#include "sampling_rate.h"

int main(int argc, char** argv) {
  msv::bench::SamplingRateConfig config;
  config.figure = "fig11";
  config.caption = "Sampling rate, 1-d selection predicate accepting 0.25% of records (ACE vs ranked B+-tree vs permuted file)";
  config.selectivity = 0.0025;
  config.dims = 1;
  config.max_x_pct = 1 == 1 ? 4.0 : 5.0;
  return msv::bench::RunSamplingRateBench(argc, argv, config);
}
