// Reproduces Figure 16 of the paper: Sampling rate, 2-d predicate accepting 0.25% of records (k-d ACE vs R-tree vs permuted file).
#include "sampling_rate.h"

int main(int argc, char** argv) {
  msv::bench::SamplingRateConfig config;
  config.figure = "fig16";
  config.caption = "Sampling rate, 2-d predicate accepting 0.25% of records (k-d ACE vs R-tree vs permuted file)";
  config.selectivity = 0.0025;
  config.dims = 2;
  config.max_x_pct = 2 == 1 ? 4.0 : 5.0;
  return msv::bench::RunSamplingRateBench(argc, argv, config);
}
