// Telemetry-overhead benchmark: what does always-on observability cost
// the statement hot path?
//
// Drives one Executor over an in-memory SALE view with a fixed batch of
// ESTIMATE statements under three configurations:
//
//   base      poller stopped, slow-query log disarmed — the default
//             serving configuration (disarmed fast path is one relaxed
//             atomic load per statement).
//   poller    a MetricsPoller snapshotting the registry at --interval_ms
//             while the same batch runs.
//   slowlog   slow-query log armed with a huge threshold, so every
//             statement pays the cost capture (ThreadDiskBusyUs /
//             ThreadPoolPages reads, ledger reset, wall clock) but the
//             ring is never written.
//
// Configurations alternate across --reps repetitions and the per-config
// minimum is reported, which suppresses scheduler noise; overhead
// percentages are computed from those minima. Writes
// bench_results/BENCH_obs_overhead.json with poller_overhead_pct and
// slowlog_overhead_pct so CI can track the "telemetry is free" claim
// (target: poller overhead under 1%).
//
// --prom_out=<path> additionally dumps the post-run registry in
// Prometheus text exposition format and validates it with the built-in
// parser, giving CI a scrape-ready artifact exercised end-to-end.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "harness.h"
#include "io/env.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/prometheus.h"
#include "obs/timeseries.h"
#include "query/executor.h"
#include "query/parser.h"
#include "util/logging.h"

namespace msv::bench {
namespace {

double WallMsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// Runs the fixed statement batch once; returns wall ms.
double RunBatch(query::Executor* exec,
                const std::vector<query::Statement>& batch) {
  auto start = std::chrono::steady_clock::now();
  for (const query::Statement& statement : batch) {
    auto result = exec->Execute(statement);
    MSV_CHECK_MSG(result.ok(), "bench statement failed");
  }
  return WallMsSince(start);
}

}  // namespace

int Run(int argc, char** argv) {
  Flags flags(argc, argv,
              {{"rows", "50000"},
               {"statements", "400"},
               {"samples", "200"},
               {"interval_ms", "5"},
               {"reps", "5"},
               {"prom_out", ""},
               {"smoke", "0"}});
  const bool smoke = flags.GetInt("smoke") != 0;
  const uint64_t rows = smoke ? 20'000 : flags.GetInt("rows");
  const size_t statements = smoke ? 150 : flags.GetInt("statements");
  const uint64_t samples = flags.GetInt("samples");
  const uint64_t interval_ms = flags.GetInt("interval_ms");
  const size_t reps = smoke ? 3 : flags.GetInt("reps");

  auto env = io::NewMemEnv();
  auto exec_or = query::Executor::Open(env.get());
  MSV_CHECK(exec_or.ok());
  auto exec = std::move(exec_or).value();
  auto setup = exec->Run(
      "GENERATE TABLE sale ROWS " + std::to_string(rows) +
      " SEED 7; CREATE MATERIALIZED SAMPLE VIEW v AS SELECT * FROM sale "
      "INDEX ON day;");
  MSV_CHECK_MSG(setup.ok(), "bench setup failed");

  // Pre-parse the batch once so parsing cost stays out of every config.
  std::vector<query::Statement> batch;
  for (size_t i = 0; i < statements; ++i) {
    double lo = static_cast<double>((i * 977) % 60000);
    auto parsed = query::Parse(
        "ESTIMATE AVG(amount) FROM v WHERE day BETWEEN " +
        std::to_string(lo) + " AND " + std::to_string(lo + 30000.0) +
        " SAMPLES " + std::to_string(samples) + ";");
    MSV_CHECK(parsed.ok());
    MSV_CHECK(parsed.value().size() == 1);
    batch.push_back(std::move(parsed.value()[0]));
  }

  obs::SlowQueryLog& slow = obs::SlowQueryLog::Global();
  slow.set_threshold_us(0);  // start from the disarmed default

  // Warm the pool/view caches so the first measured pass is not special.
  RunBatch(exec.get(), batch);

  double base_ms = 1e300, poller_ms = 1e300, slowlog_ms = 1e300;
  uint64_t polls = 0;
  for (size_t rep = 0; rep < reps; ++rep) {
    // base: poller stopped, slow log disarmed.
    slow.set_threshold_us(0);
    base_ms = std::min(base_ms, RunBatch(exec.get(), batch));

    // poller: live snapshots while the batch runs.
    {
      obs::MetricsPollerOptions popt;
      popt.interval_ms = interval_ms;
      obs::MetricsPoller poller(popt);
      poller.Start();
      poller_ms = std::min(poller_ms, RunBatch(exec.get(), batch));
      poller.Stop();
      polls += poller.polls();
    }

    // slowlog: capture armed, threshold too high to ever fire.
    slow.set_threshold_us(1ull << 62);
    slowlog_ms = std::min(slowlog_ms, RunBatch(exec.get(), batch));
    slow.set_threshold_us(0);
  }

  const double poller_overhead_pct = (poller_ms - base_ms) / base_ms * 100.0;
  const double slowlog_overhead_pct = (slowlog_ms - base_ms) / base_ms * 100.0;
  std::printf(
      "obs_overhead: %zu statements x %zu reps (min wall ms)\n"
      "  base     %8.2f ms\n"
      "  poller   %8.2f ms  (%+.2f%%, %llu polls @ %llu ms)\n"
      "  slowlog  %8.2f ms  (%+.2f%%)\n",
      statements, reps, base_ms, poller_ms, poller_overhead_pct,
      static_cast<unsigned long long>(polls),
      static_cast<unsigned long long>(interval_ms), slowlog_ms,
      slowlog_overhead_pct);

  // Optional scrape-ready Prometheus dump, validated end-to-end by the
  // built-in parser before it is written.
  const std::string prom_out = flags.GetString("prom_out");
  if (!prom_out.empty()) {
    std::string text = obs::MetricRegistry::Global().DumpPrometheus();
    Status valid = obs::ValidatePrometheusText(text);
    MSV_CHECK_MSG(valid.ok(), "DumpPrometheus failed validation");
    std::ofstream out(prom_out);
    out << text;
    MSV_CHECK_MSG(out.good(), "cannot write --prom_out file");
    std::printf("  wrote validated Prometheus dump to %s (%zu bytes)\n",
                prom_out.c_str(), text.size());
  }

  obs::Json numbers = obs::Json::Object();
  numbers["rows"] = obs::Json(rows);
  numbers["statements"] = obs::Json(static_cast<uint64_t>(statements));
  numbers["samples_per_statement"] = obs::Json(samples);
  numbers["reps"] = obs::Json(static_cast<uint64_t>(reps));
  numbers["interval_ms"] = obs::Json(interval_ms);
  numbers["smoke"] = obs::Json(smoke);
  numbers["base_wall_ms"] = obs::Json(base_ms);
  numbers["poller_wall_ms"] = obs::Json(poller_ms);
  numbers["slowlog_wall_ms"] = obs::Json(slowlog_ms);
  numbers["poller_overhead_pct"] = obs::Json(poller_overhead_pct);
  numbers["slowlog_overhead_pct"] = obs::Json(slowlog_overhead_pct);
  numbers["poller_polls"] = obs::Json(polls);
  WriteBenchJson("obs_overhead", numbers);
  return 0;
}

}  // namespace msv::bench

int main(int argc, char** argv) { return msv::bench::Run(argc, argv); }
