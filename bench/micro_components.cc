// google-benchmark microbenchmarks of the library's building blocks:
// RNG, incremental shuffle, external sort, B+-tree rank descent, ACE leaf
// read + combine, buffer pool.

#include <benchmark/benchmark.h>

#include "btree/ranked_btree.h"
#include "core/ace_sampler.h"
#include "core/ace_builder.h"
#include "core/ace_tree.h"
#include "extsort/external_sorter.h"
#include "io/buffer_pool.h"
#include "io/env.h"
#include "relation/sale_generator.h"
#include "storage/heap_file.h"
#include "util/coding.h"
#include "util/logging.h"
#include "util/random.h"

namespace msv {
namespace {

void BM_Pcg64Next(benchmark::State& state) {
  Pcg64 rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.Next());
  }
}
BENCHMARK(BM_Pcg64Next);

void BM_Pcg64Below(benchmark::State& state) {
  Pcg64 rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.Below(12345));
  }
}
BENCHMARK(BM_Pcg64Below);

void BM_LazyShuffle(benchmark::State& state) {
  Pcg64 rng(1);
  const uint64_t n = state.range(0);
  for (auto _ : state) {
    LazyShuffle shuffle(n);
    uint64_t sum = 0;
    for (uint64_t i = 0; i < n / 10; ++i) sum += shuffle.Next(&rng);
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * (n / 10));
}
BENCHMARK(BM_LazyShuffle)->Arg(1000)->Arg(100000);

void BM_ExternalSort(benchmark::State& state) {
  const uint64_t n = state.range(0);
  auto env = io::NewMemEnv();
  {
    auto writer =
        storage::HeapFileWriter::Create(env.get(), "in", 16).value();
    Pcg64 rng(3);
    char rec[16];
    for (uint64_t i = 0; i < n; ++i) {
      EncodeFixed64(rec, rng.Next());
      EncodeFixed64(rec + 8, i);
      MSV_CHECK(writer->Append(rec).ok());
    }
    MSV_CHECK(writer->Finish().ok());
  }
  extsort::SortOptions options;
  options.memory_budget_bytes = 1 << 20;
  for (auto _ : state) {
    MSV_CHECK(extsort::ExternalSort(
                  env.get(), "in", "out",
                  [](const char* a, const char* b) {
                    return DecodeFixed64(a) < DecodeFixed64(b);
                  },
                  options)
                  .ok());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ExternalSort)->Arg(100000)->Arg(1000000)->Unit(benchmark::kMillisecond);

struct BTreeFixtureState {
  std::unique_ptr<io::Env> env = io::NewMemEnv();
  std::unique_ptr<io::BufferPool> pool;
  std::unique_ptr<btree::RankedBTree> tree;

  BTreeFixtureState() {
    relation::SaleGenOptions gen;
    gen.num_records = 200000;
    MSV_CHECK(relation::GenerateSaleRelation(env.get(), "sale", gen).ok());
    btree::BTreeOptions options;
    options.page_size = 8192;
    MSV_CHECK(btree::BuildRankedBTree(env.get(), "sale", "bt",
                                      storage::SaleRecord::Layout1D(),
                                      options)
                  .ok());
    pool = std::make_unique<io::BufferPool>(8192, 1024);
    tree = btree::RankedBTree::Open(env.get(), "bt",
                                    storage::SaleRecord::Layout1D(),
                                    pool.get(), 1)
               .value();
  }
};

void BM_BTreeReadByRank(benchmark::State& state) {
  static BTreeFixtureState fixture;
  Pcg64 rng(7);
  std::vector<char> rec(storage::SaleRecord::kSize);
  for (auto _ : state) {
    uint64_t rank = rng.Below(fixture.tree->meta().num_records);
    MSV_CHECK(fixture.tree->ReadByRank(rank, rec.data()).ok());
    benchmark::DoNotOptimize(rec.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BTreeReadByRank);

struct AceFixtureState {
  std::unique_ptr<io::Env> env = io::NewMemEnv();
  std::unique_ptr<core::AceTree> tree;

  AceFixtureState() {
    relation::SaleGenOptions gen;
    gen.num_records = 200000;
    MSV_CHECK(relation::GenerateSaleRelation(env.get(), "sale", gen).ok());
    core::AceBuildOptions options;
    options.height = 8;
    MSV_CHECK(core::BuildAceTree(env.get(), "sale", "ace",
                                 storage::SaleRecord::Layout1D(), options)
                  .ok());
    tree = core::AceTree::Open(env.get(), "ace",
                               storage::SaleRecord::Layout1D())
               .value();
  }
};

void BM_AceReadLeaf(benchmark::State& state) {
  static AceFixtureState fixture;
  Pcg64 rng(9);
  for (auto _ : state) {
    uint64_t leaf = rng.Below(fixture.tree->meta().num_leaves);
    auto data = fixture.tree->ReadLeaf(leaf);
    MSV_CHECK(data.ok());
    benchmark::DoNotOptimize(data.value().TotalRecords());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AceReadLeaf);

void BM_AceFullQueryDrain(benchmark::State& state) {
  static AceFixtureState fixture;
  uint64_t seed = 0;
  for (auto _ : state) {
    auto q = sampling::RangeQuery::OneDim(20000, 45000);
    core::AceSampler sampler(fixture.tree.get(), q, seed++);
    uint64_t total = 0;
    while (!sampler.done()) {
      auto batch = sampler.NextBatch();
      MSV_CHECK(batch.ok());
      total += batch.value().count();
    }
    benchmark::DoNotOptimize(total);
    state.SetItemsProcessed(state.items_processed() + total);
  }
}
BENCHMARK(BM_AceFullQueryDrain)->Unit(benchmark::kMillisecond);

void BM_BufferPoolHit(benchmark::State& state) {
  auto env = io::NewMemEnv();
  auto file = env->OpenFile("f", true).value();
  std::string page(4096, 'x');
  for (int i = 0; i < 64; ++i) {
    MSV_CHECK(file->Append(page.data(), page.size()).ok());
  }
  io::BufferPool pool(4096, 64);
  Pcg64 rng(11);
  for (auto _ : state) {
    auto ref = pool.Get(file.get(), 1, rng.Below(64));
    MSV_CHECK(ref.ok());
    benchmark::DoNotOptimize(ref.value().data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BufferPoolHit);

}  // namespace
}  // namespace msv

BENCHMARK_MAIN();
