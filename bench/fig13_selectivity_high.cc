// Reproduces Figure 13 of the paper: Sampling rate, 1-d selection predicate accepting 25% of records.
#include "sampling_rate.h"

int main(int argc, char** argv) {
  msv::bench::SamplingRateConfig config;
  config.figure = "fig13";
  config.caption = "Sampling rate, 1-d selection predicate accepting 25% of records";
  config.selectivity = 0.25;
  config.dims = 1;
  config.max_x_pct = 1 == 1 ? 4.0 : 5.0;
  return msv::bench::RunSamplingRateBench(argc, argv, config);
}
