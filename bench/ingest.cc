// Online-ingest benchmark: sustained insert rate while serving samples.
//
// One updatable view per memtable configuration, background compaction
// on. A writer thread streams fresh SALE records through Insert() in
// small batches (the LSM write path: WAL append, memtable, inline flush
// to sorted runs, background folds into the ACE tree) while reader
// threads continuously open samplers and drain short prefixes — the
// mixed workload the write path exists to serve. Sweeps the memtable
// size to expose the flush-frequency / insert-latency trade-off.
//
// After the writer finishes, a final Rebuild() folds everything into
// the tree and a full drain recounts the view: every acknowledged
// insert must be present exactly once — the bench doubles as an
// end-to-end loss check. Writes bench_results/BENCH_ingest.json.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/sample_view.h"
#include "harness.h"
#include "obs/metrics.h"
#include "relation/sale_generator.h"
#include "sampling/range_query.h"
#include "storage/record.h"
#include "util/logging.h"
#include "util/random.h"

namespace msv::bench {
namespace {

using storage::SaleRecord;

double WallMsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// Encodes `count` fresh records with row ids starting at `first_id`.
std::string MakeBatch(Pcg64& rng, uint64_t first_id, uint64_t count) {
  std::string out;
  char buf[SaleRecord::kSize];
  for (uint64_t i = 0; i < count; ++i) {
    SaleRecord rec;
    rec.day = rng.DoubleInRange(0, 100000);
    rec.amount = rng.DoubleInRange(0, 10000);
    rec.row_id = first_id + i;
    rec.EncodeTo(buf);
    out.append(buf, sizeof(buf));
  }
  return out;
}

struct ConfigResult {
  uint64_t memtable_records = 0;
  double insert_wall_ms = 0;
  double inserts_per_sec = 0;
  uint64_t flushes = 0;
  uint64_t compactions = 0;
  uint64_t queries_served = 0;
  uint64_t samples_served = 0;
  double recount_ms = 0;
};

}  // namespace

int Run(int argc, char** argv) {
  Flags flags(argc, argv,
              {{"records", "100000"},
               {"inserts", "200000"},
               {"batch", "64"},
               {"readers", "2"},
               {"seed", "42"},
               {"smoke", "0"}});
  const bool smoke = flags.GetInt("smoke") != 0;
  const uint64_t base_records = smoke ? 20'000 : flags.GetInt("records");
  const uint64_t total_inserts = smoke ? 20'000 : flags.GetInt("inserts");
  const uint64_t batch_records = flags.GetInt("batch");
  const size_t readers = flags.GetInt("readers");
  const uint64_t seed = flags.GetInt("seed");
  MSV_CHECK_MSG(batch_records >= 1, "--batch must be >= 1");

  std::vector<uint64_t> memtable_sweep = {1024, 4096, 16384};
  if (smoke) memtable_sweep = {1024, 4096};

  auto* c_flushes = obs::MetricRegistry::Global().GetCounter("ingest.flushes");
  auto* c_compactions =
      obs::MetricRegistry::Global().GetCounter("ingest.compactions");

  obs::Json per_config = obs::Json::Object();
  std::vector<std::vector<double>> rows;

  for (uint64_t memtable_records : memtable_sweep) {
    auto env = io::NewMemEnv();
    relation::SaleGenOptions gen;
    gen.num_records = base_records;
    gen.seed = seed;
    MSV_CHECK(relation::GenerateSaleRelation(env.get(), "sale", gen).ok());

    core::MaterializedSampleView::Options options;
    options.build.page_size = 4096;
    options.build.key_dims = 1;
    options.build.seed = seed;
    options.ingest.memtable_max_records = memtable_records;
    options.ingest.background_compaction = true;
    options.ingest.compact_poll_ms = 5;
    auto view_or = core::MaterializedSampleView::Create(
        env.get(), "v", "sale", SaleRecord::Layout1D(), options);
    MSV_CHECK(view_or.ok());
    auto view = std::move(view_or).value();

    const uint64_t flushes_before = c_flushes->Value();
    const uint64_t compactions_before = c_compactions->Value();

    // Readers sample short prefixes in a loop until the writer finishes.
    std::atomic<bool> writing{true};
    std::vector<uint64_t> reader_queries(readers, 0);
    std::vector<uint64_t> reader_samples(readers, 0);
    std::vector<std::thread> reader_threads;
    reader_threads.reserve(readers);
    for (size_t r = 0; r < readers; ++r) {
      reader_threads.emplace_back([&, r] {
        Pcg64 rng = DeriveRngStream(seed + 101, r);
        while (writing.load(std::memory_order_relaxed)) {
          double lo = rng.DoubleInRange(0, 60000);
          auto query = sampling::RangeQuery::OneDim(lo, lo + 40000);
          auto sampler = view->Sample(query, rng.Next());
          MSV_CHECK(sampler.ok());
          uint64_t pulled = 0;
          while (!sampler.value()->done() && pulled < 256) {
            auto batch = sampler.value()->NextBatch();
            MSV_CHECK(batch.ok());
            pulled += batch.value().count();
          }
          ++reader_queries[r];
          reader_samples[r] += pulled;
        }
      });
    }

    // The writer streams the full insert workload in small batches.
    Pcg64 write_rng(seed + 7);
    auto start = std::chrono::steady_clock::now();
    uint64_t inserted = 0;
    while (inserted < total_inserts) {
      uint64_t n = std::min(batch_records, total_inserts - inserted);
      std::string batch = MakeBatch(write_rng, base_records + inserted, n);
      MSV_CHECK(view->Insert(batch.data(), n).ok());
      inserted += n;
    }
    ConfigResult result;
    result.memtable_records = memtable_records;
    result.insert_wall_ms = WallMsSince(start);
    result.inserts_per_sec =
        1000.0 * static_cast<double>(total_inserts) / result.insert_wall_ms;

    writing.store(false, std::memory_order_relaxed);
    for (auto& t : reader_threads) t.join();
    for (size_t r = 0; r < readers; ++r) {
      result.queries_served += reader_queries[r];
      result.samples_served += reader_samples[r];
    }
    // Fold everything into the tree, then recount: a full drain must
    // return base + inserts distinct records — nothing lost, nothing
    // duplicated by the flush/compaction machinery under concurrency.
    MSV_CHECK(view->Rebuild().ok());
    result.flushes = c_flushes->Value() - flushes_before;
    result.compactions = c_compactions->Value() - compactions_before;
    auto recount_start = std::chrono::steady_clock::now();
    auto all = sampling::RangeQuery::OneDim(-1.0, 2e9);
    auto sampler = view->Sample(all, seed + 3);
    MSV_CHECK(sampler.ok());
    std::set<uint64_t> ids;
    uint64_t returned = 0;
    while (!sampler.value()->done()) {
      auto batch = sampler.value()->NextBatch();
      MSV_CHECK(batch.ok());
      for (uint64_t i = 0; i < batch.value().count(); ++i) {
        ids.insert(SaleRecord::DecodeFrom(batch.value().record(i)).row_id);
      }
      returned += batch.value().count();
    }
    result.recount_ms = WallMsSince(recount_start);
    MSV_CHECK_MSG(returned == base_records + total_inserts,
                  "full drain must return every record exactly once");
    MSV_CHECK_MSG(ids.size() == base_records + total_inserts,
                  "recount lost or duplicated inserted records");

    std::printf(
        "memtable=%llu  %.0f inserts/s (%.1f ms)  flushes=%llu "
        "compactions=%llu  reads: %llu queries / %llu samples  "
        "recount %.1f ms\n",
        static_cast<unsigned long long>(memtable_records),
        result.inserts_per_sec, result.insert_wall_ms,
        static_cast<unsigned long long>(result.flushes),
        static_cast<unsigned long long>(result.compactions),
        static_cast<unsigned long long>(result.queries_served),
        static_cast<unsigned long long>(result.samples_served),
        result.recount_ms);

    rows.push_back({static_cast<double>(memtable_records),
                    result.inserts_per_sec,
                    static_cast<double>(result.flushes),
                    static_cast<double>(result.compactions),
                    static_cast<double>(result.queries_served)});

    obs::Json entry = obs::Json::Object();
    entry["insert_wall_ms"] = obs::Json(result.insert_wall_ms);
    entry["inserts_per_sec"] = obs::Json(result.inserts_per_sec);
    entry["flushes"] = obs::Json(result.flushes);
    entry["compactions"] = obs::Json(result.compactions);
    entry["reader_queries"] = obs::Json(result.queries_served);
    entry["reader_samples"] = obs::Json(result.samples_served);
    entry["recount_ms"] = obs::Json(result.recount_ms);
    entry["recount_exact"] = obs::Json(true);
    per_config[std::to_string(memtable_records)] = std::move(entry);

    // Smoke gate: the write path must sustain a sane floor on an
    // in-memory env even while serving readers. Real rates are ~100x
    // this; the floor only catches pathological regressions (e.g. a
    // full tree rebuild per batch).
    if (smoke) {
      MSV_CHECK_MSG(result.inserts_per_sec > 10'000.0,
                    "smoke: insert rate collapsed");
    }
  }

  PrintTable("ingest: sustained insert rate under concurrent reads",
             {"memtable", "inserts_per_s", "flushes", "compactions",
              "queries"},
             rows);
  WriteCsv("ingest.csv",
           {"memtable", "inserts_per_s", "flushes", "compactions",
            "queries"},
           rows);

  obs::Json numbers = obs::Json::Object();
  numbers["base_records"] = obs::Json(base_records);
  numbers["inserts"] = obs::Json(total_inserts);
  numbers["batch_records"] = obs::Json(batch_records);
  numbers["readers"] = obs::Json(static_cast<uint64_t>(readers));
  numbers["smoke"] = obs::Json(smoke);
  numbers["by_memtable_records"] = std::move(per_config);
  WriteBenchJson("ingest", numbers);
  return 0;
}

}  // namespace msv::bench

int main(int argc, char** argv) { return msv::bench::Run(argc, argv); }
