// Reproduces Figure 14 of the paper: the 2.5%-selectivity experiment run
// until every method has returned all matching records, exposing the late
// crossover point (Sec. 8.2).
#include "sampling_rate.h"

int main(int argc, char** argv) {
  msv::bench::SamplingRateConfig config;
  config.figure = "fig14";
  config.caption =
      "2.5% selectivity run to completion (crossover study)";
  config.selectivity = 0.025;
  config.dims = 1;
  config.to_completion = true;
  return msv::bench::RunSamplingRateBench(argc, argv, config);
}
