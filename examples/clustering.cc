// Scalable clustering over an online random sample (Bradley et al., KDD'98
// — one of the paper's motivating applications, Sec. 1).
//
// Runs mini-batch k-means over the (DAY, AMOUNT) pairs of records matching
// a range predicate, consuming the ACE-tree sample stream one batch at a
// time. Because the stream is an online random sample, the algorithm sees
// an unbiased, randomly ordered input and the centroids converge long
// before the data is exhausted — the "process a sample until marginal
// accuracy is small" recipe the paper describes.
//
// Run:  ./clustering

#include <array>
#include <cmath>
#include <cstdio>
#include <vector>

#include "core/ace_builder.h"
#include "core/ace_sampler.h"
#include "core/ace_tree.h"
#include "io/env.h"
#include "relation/sale_generator.h"
#include "storage/heap_file.h"
#include "storage/record.h"
#include "util/logging.h"
#include "util/random.h"

using msv::storage::SaleRecord;

namespace {

constexpr int kClusters = 4;

struct Point {
  double x, y;
};

struct Centroid {
  Point p{0, 0};
  uint64_t weight = 0;
};

double Dist2(const Point& a, const Point& b) {
  return (a.x - b.x) * (a.x - b.x) + (a.y - b.y) * (a.y - b.y);
}

// Mini-batch k-means update (Bradley-style incremental fold-in): each
// sample moves its nearest centroid by 1/weight.
void FoldIn(std::array<Centroid, kClusters>* centroids, const Point& s) {
  int best = 0;
  double best_d = 1e300;
  for (int c = 0; c < kClusters; ++c) {
    double d = Dist2((*centroids)[c].p, s);
    if (d < best_d) {
      best_d = d;
      best = c;
    }
  }
  Centroid& ctr = (*centroids)[best];
  ++ctr.weight;
  double lr = 1.0 / static_cast<double>(ctr.weight);
  ctr.p.x += lr * (s.x - ctr.p.x);
  ctr.p.y += lr * (s.y - ctr.p.y);
}

double Inertia(const std::array<Centroid, kClusters>& centroids,
               const std::vector<Point>& holdout) {
  double total = 0;
  for (const Point& s : holdout) {
    double best = 1e300;
    for (const Centroid& c : centroids) best = std::min(best, Dist2(c.p, s));
    total += best;
  }
  return total / static_cast<double>(holdout.size());
}

}  // namespace

int main() {
  auto env = msv::io::NewMemEnv();
  msv::relation::SaleGenOptions gen;
  gen.num_records = 500'000;
  gen.seed = 31;
  MSV_CHECK(msv::relation::GenerateSaleRelation(env.get(), "sale", gen).ok());

  auto layout = SaleRecord::Layout2D();
  msv::core::AceBuildOptions build;
  build.key_dims = 2;
  MSV_CHECK(
      msv::core::BuildAceTree(env.get(), "sale", "sale.ace", layout, build)
          .ok());
  auto tree =
      std::move(msv::core::AceTree::Open(env.get(), "sale.ace", layout))
          .value();

  // Cluster the sales inside one region of (DAY, AMOUNT) space.
  auto query = msv::sampling::RangeQuery::TwoDim(20000, 80000, 1000, 9000);
  msv::core::AceSampler sampler(tree.get(), query, 3);

  // Hold out the first 2,000 samples to score convergence (they are a
  // uniform sample of the region, so inertia on them estimates the true
  // objective).
  std::vector<Point> holdout;
  while (!sampler.done() && holdout.size() < 2000) {
    auto batch = sampler.NextBatch();
    MSV_CHECK(batch.ok());
    for (size_t i = 0; i < batch.value().count(); ++i) {
      SaleRecord r = SaleRecord::DecodeFrom(batch.value().record(i));
      holdout.push_back({r.day, r.amount});
    }
  }
  MSV_CHECK(holdout.size() >= kClusters);

  // Seed centroids from the first holdout points, then stream.
  std::array<Centroid, kClusters> centroids;
  msv::Pcg64 rng(17);
  for (int c = 0; c < kClusters; ++c) {
    centroids[c].p = holdout[rng.Below(holdout.size())];
  }

  std::printf("streaming k-means over the online sample (k=%d)\n", kClusters);
  std::printf("%10s %12s\n", "samples", "avg inertia");
  uint64_t folded = 0;
  uint64_t next_report = 500;
  double last_inertia = 1e300;
  while (!sampler.done() && folded < 200'000) {
    auto batch = sampler.NextBatch();
    MSV_CHECK(batch.ok());
    for (size_t i = 0; i < batch.value().count(); ++i) {
      SaleRecord r = SaleRecord::DecodeFrom(batch.value().record(i));
      FoldIn(&centroids, {r.day, r.amount});
      ++folded;
    }
    if (folded >= next_report) {
      double inertia = Inertia(centroids, holdout);
      std::printf("%10llu %12.4g\n", static_cast<unsigned long long>(folded),
                  inertia);
      // Stop early when the marginal improvement is small — the whole
      // point of sampling-based scaling.
      if (inertia > last_inertia * 0.999) break;
      last_inertia = inertia;
      next_report *= 2;
    }
  }

  std::printf("\nfinal centroids (DAY, AMOUNT):\n");
  for (const Centroid& c : centroids) {
    std::printf("  (%8.1f, %8.2f)  weight=%llu\n", c.p.x, c.p.y,
                static_cast<unsigned long long>(c.weight));
  }
  std::printf("converged after %llu of ~%llu matching records (%.1f%%)\n",
              static_cast<unsigned long long>(folded),
              static_cast<unsigned long long>(
                  tree->EstimateMatchCount(query).value_or(0)),
              100.0 * static_cast<double>(folded) /
                  static_cast<double>(
                      tree->EstimateMatchCount(query).value_or(1)));
  return 0;
}
