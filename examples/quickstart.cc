// Quickstart: create a materialized sample view over a relation and draw
// an online random sample from a range predicate.
//
//   1. generate a SALE relation (heap file) in an in-memory Env,
//   2. CREATE MATERIALIZED SAMPLE VIEW ... INDEX ON DAY  ==  BuildAceTree,
//   3. sample from  SELECT * FROM SALE WHERE DAY BETWEEN lo AND hi,
//   4. watch the sample grow — every prefix is a true uniform random
//      sample of the matching records.
//
// Run:  ./quickstart

#include <cstdio>

#include "core/ace_builder.h"
#include "core/ace_sampler.h"
#include "core/ace_tree.h"
#include "io/env.h"
#include "relation/sale_generator.h"
#include "storage/record.h"
#include "util/logging.h"

using msv::core::AceBuildOptions;
using msv::core::AceSampler;
using msv::core::AceTree;
using msv::storage::SaleRecord;

int main() {
  auto env = msv::io::NewMemEnv();

  // -- 1. The base relation: 500k SALE records (DAY, AMOUNT, CUST, ...).
  msv::relation::SaleGenOptions gen;
  gen.num_records = 500'000;
  gen.seed = 2024;
  MSV_CHECK(msv::relation::GenerateSaleRelation(env.get(), "sale", gen).ok());
  std::printf("generated SALE with %llu records\n",
              static_cast<unsigned long long>(gen.num_records));

  // -- 2. CREATE MATERIALIZED SAMPLE VIEW MySam AS SELECT * FROM SALE
  //       INDEX ON DAY
  AceBuildOptions build;
  build.page_size = 64 << 10;  // leaf nodes sized to one disk block
  auto layout = SaleRecord::Layout1D();
  MSV_CHECK(
      msv::core::BuildAceTree(env.get(), "sale", "mysam", layout, build).ok());
  auto tree = std::move(AceTree::Open(env.get(), "mysam", layout)).value();
  std::printf("built ACE tree: height=%u leaves=%llu\n", tree->meta().height,
              static_cast<unsigned long long>(tree->meta().num_leaves));

  // -- 3. Sample from SELECT * FROM SALE WHERE DAY BETWEEN 20000 AND 30000.
  auto query = msv::sampling::RangeQuery::OneDim(20000, 30000);
  std::printf("population estimate for %s: ~%llu records\n",
              query.ToString().c_str(),
              static_cast<unsigned long long>(
                  tree->EstimateMatchCount(query).value_or(0)));

  AceSampler sampler(tree.get(), query, /*seed=*/7);

  // -- 4. Pull batches; print the first few samples, then just the counts.
  std::printf("\nfirst samples from the view:\n");
  size_t shown = 0;
  uint64_t pulls = 0;
  while (!sampler.done() && sampler.samples_returned() < 5000) {
    auto batch = sampler.NextBatch();
    MSV_CHECK(batch.ok());
    ++pulls;
    for (size_t i = 0; i < batch.value().count() && shown < 8; ++i, ++shown) {
      SaleRecord rec = SaleRecord::DecodeFrom(batch.value().record(i));
      std::printf("  DAY=%8.1f AMOUNT=%8.2f CUST=%llu\n", rec.day, rec.amount,
                  static_cast<unsigned long long>(rec.cust));
    }
    if (pulls % 4 == 0) {
      std::printf("  ... %llu random samples after %llu leaf reads\n",
                  static_cast<unsigned long long>(sampler.samples_returned()),
                  static_cast<unsigned long long>(sampler.leaves_read()));
    }
  }
  std::printf(
      "\ndone: %llu online random samples (every prefix was itself a "
      "uniform sample)\n",
      static_cast<unsigned long long>(sampler.samples_returned()));
  return 0;
}
