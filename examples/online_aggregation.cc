// Online aggregation (Hellerstein et al.) over a materialized sample view —
// the paper's primary motivating application.
//
// Estimates   SELECT AVG(AMOUNT), SUM(AMOUNT) FROM SALE
//             WHERE DAY BETWEEN lo AND hi
// from an online random sample, printing the running estimate and a 95%
// confidence interval as simulated I/O time passes. Compares the ACE-tree
// sample view against scanning a randomly permuted file: the ACE tree
// tightens the interval far sooner because its early sampling rate from
// the predicate is much higher.
//
// Run:  ./online_aggregation

#include <cstdio>

#include "core/ace_builder.h"
#include "core/ace_sampler.h"
#include "core/ace_tree.h"
#include "io/disk_model.h"
#include "io/env.h"
#include "permuted/permuted_file.h"
#include "relation/sale_generator.h"
#include "relation/workload.h"
#include "sampling/online_aggregator.h"
#include "storage/heap_file.h"
#include "util/logging.h"

using msv::sampling::OnlineAggregator;
using msv::storage::SaleRecord;

namespace {

double Amount(const char* rec) { return SaleRecord::DecodeFrom(rec).amount; }

void RunEstimation(msv::sampling::SampleStream* stream,
                   msv::io::DiskDevice* device, uint64_t population,
                   double truth, double scan_ms) {
  OnlineAggregator agg(&Amount, population, 0.95);
  double next_report_pct = 0.25;
  std::printf("  %%scan   samples       AVG estimate (95%% CI)     rel.err\n");
  while (!stream->done() && device->clock().NowMs() < scan_ms * 0.04) {
    auto batch = stream->NextBatch();
    MSV_CHECK(batch.ok());
    agg.Consume(batch.value());
    double pct = device->clock().NowMs() / scan_ms * 100.0;
    if (pct >= next_report_pct && agg.samples_seen() > 1) {
      auto e = agg.Avg();
      std::printf("  %5.2f%%  %8llu   %9.3f +/- %7.3f    %6.3f%%\n", pct,
                  static_cast<unsigned long long>(e.samples), e.value,
                  e.half_width, (e.value - truth) / truth * 100.0);
      next_report_pct += 0.75;
    }
  }
  auto final_avg = agg.Avg();
  auto final_sum = agg.Sum();
  std::printf("  final: AVG = %.3f +/- %.3f (truth %.3f), SUM ~ %.4g +/- "
              "%.3g\n",
              final_avg.value, final_avg.half_width, truth, final_sum.value,
              final_sum.half_width);
}

}  // namespace

int main() {
  auto env = msv::io::NewMemEnv();
  const uint64_t kRecords = 1'000'000;

  msv::relation::SaleGenOptions gen;
  gen.num_records = kRecords;
  gen.seed = 99;
  MSV_CHECK(msv::relation::GenerateSaleRelation(env.get(), "sale", gen).ok());
  auto layout = SaleRecord::Layout1D();

  MSV_CHECK(msv::core::BuildAceTree(env.get(), "sale", "sale.ace", layout)
                .ok());
  MSV_CHECK(
      msv::permuted::BuildPermutedFile(env.get(), "sale", "sale.perm").ok());

  // The query: a 2.5% DAY window.
  auto query = msv::sampling::RangeQuery::OneDim(40000, 42500);
  auto sale = std::move(msv::storage::HeapFile::Open(env.get(), "sale"))
                  .value();
  uint64_t population = 0;
  double truth = 0;
  {
    auto scanner = sale->NewScanner();
    for (;;) {
      auto rec = scanner.Next();
      MSV_CHECK(rec.ok());
      if (rec.value() == nullptr) break;
      if (query.Matches(layout, rec.value())) {
        ++population;
        truth += Amount(rec.value());
      }
    }
    truth /= static_cast<double>(population);
  }
  std::printf("query %s matches %llu records; true AVG(AMOUNT) = %.3f\n\n",
              query.ToString().c_str(),
              static_cast<unsigned long long>(population), truth);

  const double scan_ms =
      msv::io::DiskDevice().SequentialScanMs(kRecords * SaleRecord::kSize);

  std::printf("--- online aggregation over the ACE-tree sample view ---\n");
  {
    auto device = std::make_shared<msv::io::DiskDevice>();
    auto timed = msv::io::NewSimEnv(env.get(), device);
    auto tree =
        std::move(msv::core::AceTree::Open(timed.get(), "sale.ace", layout))
            .value();
    // The ACE tree's internal-node counts supply the population for SUM.
    uint64_t est_pop = tree->EstimateMatchCount(query).value_or(population);
    std::printf("(population from internal-node counts: %llu)\n",
                static_cast<unsigned long long>(est_pop));
    msv::core::AceSampler sampler(tree.get(), query, 5);
    device->clock().Reset();
    RunEstimation(&sampler, device.get(), est_pop, truth, scan_ms);
  }

  std::printf("\n--- online aggregation over a randomly permuted file ---\n");
  {
    auto device = std::make_shared<msv::io::DiskDevice>();
    auto timed = msv::io::NewSimEnv(env.get(), device);
    auto perm =
        std::move(msv::storage::HeapFile::Open(timed.get(), "sale.perm"))
            .value();
    msv::permuted::PermutedFileSampler sampler(perm.get(), layout, query,
                                               128 << 10);
    device->clock().Reset();
    RunEstimation(&sampler, device.get(), population, truth, scan_ms);
  }
  return 0;
}
