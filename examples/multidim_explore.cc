// Multi-dimensional exploration with a k-d ACE tree (paper Sec. 7).
//
// Builds a 2-d materialized sample view over (DAY, AMOUNT) and, for a
// sequence of query rectangles of shrinking size, draws a quick online
// sample from each to print instant summary statistics — the "explore a
// warehouse region by sampling" workflow.
//
// Run:  ./multidim_explore

#include <cstdio>

#include "core/ace_builder.h"
#include "core/ace_sampler.h"
#include "core/ace_tree.h"
#include "io/env.h"
#include "relation/sale_generator.h"
#include "sampling/online_aggregator.h"
#include "storage/record.h"
#include "util/logging.h"

using msv::storage::SaleRecord;

int main() {
  auto env = msv::io::NewMemEnv();
  msv::relation::SaleGenOptions gen;
  gen.num_records = 500'000;
  gen.seed = 77;
  MSV_CHECK(msv::relation::GenerateSaleRelation(env.get(), "sale", gen).ok());

  auto layout = SaleRecord::Layout2D();
  msv::core::AceBuildOptions build;
  build.key_dims = 2;  // k-d ACE tree: levels alternate DAY / AMOUNT splits
  MSV_CHECK(
      msv::core::BuildAceTree(env.get(), "sale", "sale.ace", layout, build)
          .ok());
  auto tree =
      std::move(msv::core::AceTree::Open(env.get(), "sale.ace", layout))
          .value();
  std::printf("k-d ACE tree over (DAY, AMOUNT): height=%u, leaves=%llu\n\n",
              tree->meta().height,
              static_cast<unsigned long long>(tree->meta().num_leaves));

  // Drill down: each rectangle is a quarter of the previous one.
  struct Region {
    const char* name;
    msv::sampling::RangeQuery q;
  };
  std::vector<Region> regions = {
      {"whole domain", msv::sampling::RangeQuery::TwoDim(0, 100000, 0, 10000)},
      {"Q2 days, mid spend",
       msv::sampling::RangeQuery::TwoDim(25000, 50000, 2500, 7500)},
      {"one month, high spend",
       msv::sampling::RangeQuery::TwoDim(30000, 33000, 7500, 10000)},
      {"one week, one price band",
       msv::sampling::RangeQuery::TwoDim(30000, 30700, 9000, 9500)},
  };

  for (const Region& region : regions) {
    uint64_t population = tree->EstimateMatchCount(region.q).value_or(0);
    msv::core::AceSampler sampler(tree.get(), region.q, 11);
    msv::sampling::OnlineAggregator agg(
        [](const char* rec) { return SaleRecord::DecodeFrom(rec).amount; },
        population, 0.95);
    // A quick probe: at most 40 leaf reads' worth of samples.
    uint64_t pulls = 0;
    while (!sampler.done() && pulls < 40 && agg.samples_seen() < 4000) {
      auto batch = sampler.NextBatch();
      MSV_CHECK(batch.ok());
      agg.Consume(batch.value());
      ++pulls;
    }
    auto avg = agg.Avg();
    auto sum = agg.Sum();
    std::printf("%-26s  ~%9llu rows | %5llu samples in %2llu leaf reads | "
                "AVG(AMOUNT) = %8.2f +/- %6.2f | SUM ~ %.4g\n",
                region.name, static_cast<unsigned long long>(population),
                static_cast<unsigned long long>(agg.samples_seen()),
                static_cast<unsigned long long>(pulls), avg.value,
                avg.half_width, sum.value);
  }
  std::printf(
      "\nevery line above cost a handful of leaf reads instead of a scan\n");
  return 0;
}
