// MSVQL shell: the paper's SQL surface, live.
//
//   CREATE MATERIALIZED SAMPLE VIEW mysam AS SELECT * FROM sale
//     INDEX ON day;
//   SAMPLE FROM mysam WHERE day BETWEEN 20000 AND 30000 LIMIT 5;
//   ESTIMATE AVG(amount) FROM mysam WHERE day BETWEEN 20000 AND 30000;
//
// Usage:
//   ./msvql_shell                run the built-in demo script
//   ./msvql_shell -              read statements from stdin (";"-separated)
//   ./msvql_shell script.msvql   run a script file

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "io/env.h"
#include "query/executor.h"
#include "query/parser.h"

namespace {

constexpr const char* kDemoScript = R"SQL(
  GENERATE TABLE sale ROWS 200000 SEED 7;
  SHOW TABLES;

  CREATE MATERIALIZED SAMPLE VIEW mysam AS SELECT * FROM sale INDEX ON day;
  CREATE MATERIALIZED SAMPLE VIEW sam2d AS SELECT * FROM sale
      INDEX ON day, amount;
  SHOW VIEWS;

  SAMPLE FROM mysam WHERE day BETWEEN 20000 AND 30000 LIMIT 5;
  ESTIMATE AVG(amount) FROM mysam WHERE day BETWEEN 20000 AND 30000
      SAMPLES 2000;
  ESTIMATE SUM(amount) FROM mysam WHERE day BETWEEN 20000 AND 30000
      SAMPLES 2000;
  ESTIMATE COUNT(*) FROM mysam WHERE day BETWEEN 20000 AND 30000;

  SAMPLE FROM sam2d WHERE day BETWEEN 10000 AND 60000
      AND amount BETWEEN 9000 AND 10000 LIMIT 5;

  INSERT INTO mysam ROWS 5000 SEED 11;
  ESTIMATE COUNT(*) FROM mysam WHERE day BETWEEN 20000 AND 30000;
  REBUILD mysam;
  ESTIMATE AVG(amount) FROM mysam WHERE day BETWEEN 20000 AND 30000
      SAMPLES 2000;

  DROP VIEW sam2d;
  SHOW VIEWS;
)SQL";

int RunScript(msv::query::Executor* executor, const std::string& script,
              bool echo) {
  // Execute statement by statement so each statement's output follows its
  // text.
  auto statements = msv::query::Parse(script);
  if (!statements.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 statements.status().ToString().c_str());
    return 1;
  }
  (void)echo;
  auto result = executor->Run(script);
  if (!result.ok()) {
    std::fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::fputs(result.value().c_str(), stdout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  auto env = msv::io::NewMemEnv();
  auto executor_or = msv::query::Executor::Open(env.get());
  if (!executor_or.ok()) {
    std::fprintf(stderr, "cannot open executor: %s\n",
                 executor_or.status().ToString().c_str());
    return 1;
  }
  auto executor = std::move(executor_or).value();

  if (argc == 1) {
    std::printf("-- msvql demo (pass '-' to read from stdin) --\n");
    std::fputs(kDemoScript, stdout);
    std::printf("-- output --\n");
    return RunScript(executor.get(), kDemoScript, false);
  }

  std::string source;
  if (std::string(argv[1]) == "-") {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    source = buffer.str();
  } else {
    std::ifstream file(argv[1]);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::ostringstream buffer;
    buffer << file.rdbuf();
    source = buffer.str();
  }
  return RunScript(executor.get(), source, true);
}
