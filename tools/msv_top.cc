// msv_top: a live terminal view of MSV serving telemetry, in the spirit
// of `top`. It tails the JSON-lines file a MetricsPoller exports
// (MetricsPollerOptions::export_path) and renders per-interval rates,
// buffer-pool hit ratio, latency quantiles and the most recent slow
// queries, refreshing in place.
//
// Usage:
//   msv_top <export-file>                live view (ANSI clear+redraw)
//   msv_top <export-file> --once         render the latest point and exit
//   msv_top <export-file> --interval=ms  refresh period (default 1000)
//   msv_top <export-file> --slow=N       slow-query rows shown (default 5)
//
// Rates are deltas between the last two exported points divided by their
// timestamp gap, so the view is exact regardless of the poller interval.
// The tool is read-only: it never touches the registry of the process
// being observed, only the exported file.

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.h"

namespace msv {
namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: msv_top <export-file> [--once] [--interval=ms]"
               " [--slow=N]\n"
               "       <export-file> is the JSON-lines file written by a\n"
               "       MetricsPoller with export_path set (see DESIGN.md\n"
               "       section 12).\n");
  return 2;
}

// One exported poller point, parsed.
struct Point {
  uint64_t ts_us = 0;
  obs::Json root;  // {"ts_us", "metrics", "slow_queries"}
};

// Reads the last `want` parseable lines of the export file. The file is
// append-only JSON lines; rereading it wholesale keeps the tool stateless
// across refreshes (and correct across truncation/rotation).
std::vector<Point> ReadLastPoints(const std::string& path, size_t want) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  std::vector<Point> points;
  size_t first = lines.size() > want ? lines.size() - want : 0;
  for (size_t i = first; i < lines.size(); ++i) {
    auto parsed = obs::Json::Parse(lines[i]);
    if (!parsed.ok()) continue;  // torn final line mid-write: skip
    Point p;
    p.root = std::move(parsed.value());
    if (const obs::Json* ts = p.root.Find("ts_us")) {
      p.ts_us = static_cast<uint64_t>(ts->AsNumber());
    }
    points.push_back(std::move(p));
  }
  return points;
}

// Counter total by name, 0 when absent (family not registered yet).
double CounterTotal(const obs::Json& point, const std::string& name) {
  const obs::Json* metrics = point.Find("metrics");
  if (metrics == nullptr) return 0.0;
  const obs::Json* counters = metrics->Find("counters");
  if (counters == nullptr) return 0.0;
  const obs::Json* entry = counters->Find(name);
  if (entry == nullptr) return 0.0;
  const obs::Json* total = entry->Find("total");
  return total != nullptr ? total->AsNumber() : 0.0;
}

// True when the counter family has been registered at all — used to
// show the serving section only for processes that run a msv_serve
// front end.
bool HasCounter(const obs::Json& point, const std::string& name) {
  const obs::Json* metrics = point.Find("metrics");
  if (metrics == nullptr) return false;
  const obs::Json* counters = metrics->Find("counters");
  return counters != nullptr && counters->Find(name) != nullptr;
}

double GaugeValue(const obs::Json& point, const std::string& name) {
  const obs::Json* metrics = point.Find("metrics");
  if (metrics == nullptr) return 0.0;
  const obs::Json* gauges = metrics->Find("gauges");
  if (gauges == nullptr) return 0.0;
  const obs::Json* entry = gauges->Find(name);
  return entry != nullptr ? entry->AsNumber() : 0.0;
}

const obs::Json* HistogramEntry(const obs::Json& point,
                                const std::string& name) {
  const obs::Json* metrics = point.Find("metrics");
  if (metrics == nullptr) return nullptr;
  const obs::Json* hists = metrics->Find("histograms");
  if (hists == nullptr) return nullptr;
  return hists->Find(name);
}

// Delta of a counter between two points, clamped at 0 (an epoch reset or
// process restart can step totals backwards; a negative rate is noise).
double Delta(const Point& prev, const Point& cur, const std::string& name) {
  double d = CounterTotal(cur.root, name) - CounterTotal(prev.root, name);
  return d > 0.0 ? d : 0.0;
}

void RenderRateRow(const char* label, double delta, double dt_s) {
  std::printf("  %-22s %12.1f/s  (%+.0f)\n", label,
              dt_s > 0 ? delta / dt_s : 0.0, delta);
}

void Render(const std::vector<Point>& points, size_t slow_rows) {
  if (points.empty()) {
    std::printf("msv_top: waiting for poller points...\n");
    return;
  }
  const Point& cur = points.back();
  const Point* prev = points.size() >= 2 ? &points[points.size() - 2] : nullptr;
  double dt_s = prev != nullptr && cur.ts_us > prev->ts_us
                    ? static_cast<double>(cur.ts_us - prev->ts_us) / 1e6
                    : 0.0;

  std::printf("msv_top  —  point @%" PRIu64 " us", cur.ts_us);
  if (prev != nullptr) {
    std::printf("  (interval %.2fs)", dt_s);
  } else {
    std::printf("  (single point; rates need two)");
  }
  std::printf("\n\n");

  std::printf("rates (since previous point):\n");
  if (prev != nullptr) {
    RenderRateRow("statements", Delta(*prev, cur, "query.statements"), dt_s);
    RenderRateRow("statement errors", Delta(*prev, cur, "query.errors"), dt_s);
    RenderRateRow("disk reads", Delta(*prev, cur, "io.disk.reads"), dt_s);
    double read_bytes = Delta(*prev, cur, "io.disk.read_bytes");
    std::printf("  %-22s %12.2f MB/s\n", "disk read volume",
                dt_s > 0 ? read_bytes / 1e6 / dt_s : 0.0);
    RenderRateRow("pool hits", Delta(*prev, cur, "io.pool.hits"), dt_s);
    RenderRateRow("pool misses", Delta(*prev, cur, "io.pool.misses"), dt_s);
    double hits = Delta(*prev, cur, "io.pool.hits");
    double misses = Delta(*prev, cur, "io.pool.misses");
    double lookups = hits + misses;
    std::printf("  %-22s %12.1f%%\n", "pool hit ratio",
                lookups > 0 ? 100.0 * hits / lookups : 0.0);
  } else {
    std::printf("  (n/a)\n");
  }

  std::printf("\ngauges:\n");
  std::printf("  %-22s %12.0f / %.0f pages\n", "pool resident",
              GaugeValue(cur.root, "io.pool.resident_pages"),
              GaugeValue(cur.root, "io.pool.capacity_pages"));
  std::printf("  %-22s %12.1f ms\n", "sim disk clock",
              GaugeValue(cur.root, "io.disk.clock_ms"));

  if (HasCounter(cur.root, "serve.requests")) {
    std::printf("\nserving:\n");
    std::printf("  %-22s %12.0f\n", "active connections",
                GaugeValue(cur.root, "serve.connections_active"));
    std::printf("  %-22s %12.0f\n", "admission queue depth",
                GaugeValue(cur.root, "serve.queue_depth"));
    if (prev != nullptr) {
      double requests = Delta(*prev, cur, "serve.requests");
      double rejected = Delta(*prev, cur, "serve.rejected_overload");
      RenderRateRow("requests", requests, dt_s);
      RenderRateRow("responses", Delta(*prev, cur, "serve.responses"), dt_s);
      RenderRateRow("overload rejections", rejected, dt_s);
      std::printf("  %-22s %12.1f%%\n", "rejection rate",
                  requests > 0 ? 100.0 * rejected / requests : 0.0);
      RenderRateRow("dropped connections",
                    Delta(*prev, cur, "serve.connections_dropped"), dt_s);
    }
  }

  if (HasCounter(cur.root, "ingest.inserted_records")) {
    std::printf("\ningest:\n");
    std::printf("  %-22s %12.0f records\n", "memtable",
                GaugeValue(cur.root, "ingest.memtable_records"));
    std::printf("  %-22s %12.0f runs / %.0f records\n", "sorted runs",
                GaugeValue(cur.root, "ingest.runs"),
                GaugeValue(cur.root, "ingest.run_records"));
    std::printf("  %-22s %12.0f records\n", "base tree",
                GaugeValue(cur.root, "ingest.base_records"));
    if (prev != nullptr) {
      RenderRateRow("inserts", Delta(*prev, cur, "ingest.inserted_records"),
                    dt_s);
      RenderRateRow("flushes", Delta(*prev, cur, "ingest.flushes"), dt_s);
      RenderRateRow("flush errors",
                    Delta(*prev, cur, "ingest.flush_errors"), dt_s);
      RenderRateRow("compactions", Delta(*prev, cur, "ingest.compactions"),
                    dt_s);
      RenderRateRow("compaction errors",
                    Delta(*prev, cur, "ingest.compaction_errors"), dt_s);
    }
  }

  std::printf("\nlatency quantiles (lifetime):\n");
  for (const char* name :
       {"query.statement_us", "io.disk.access_us", "serve.request_us",
        "ingest.flush_us", "ingest.compact_us"}) {
    const obs::Json* h = HistogramEntry(cur.root, name);
    if (h == nullptr) continue;
    const obs::Json* count = h->Find("count");
    const obs::Json* p50 = h->Find("p50");
    const obs::Json* p95 = h->Find("p95");
    const obs::Json* p99 = h->Find("p99");
    std::printf("  %-22s p50 %10.0f  p95 %10.0f  p99 %10.0f  (n=%.0f)\n",
                name, p50 ? p50->AsNumber() : 0.0, p95 ? p95->AsNumber() : 0.0,
                p99 ? p99->AsNumber() : 0.0, count ? count->AsNumber() : 0.0);
  }

  const obs::Json* slow = cur.root.Find("slow_queries");
  std::printf("\nslow queries (most recent %zu):\n", slow_rows);
  if (slow == nullptr || slow->size() == 0) {
    std::printf("  (none recorded — arm with MSV_SLOW_QUERY_US)\n");
    return;
  }
  std::printf("  %-10s %10s %10s %8s %10s %s\n", "stmt", "wall_us", "disk_us",
              "pages", "samples", "session");
  size_t n = slow->size();
  size_t first = n > slow_rows ? n - slow_rows : 0;
  for (size_t i = n; i > first; --i) {  // newest first
    const obs::Json& rec = slow->at(i - 1);
    const obs::Json* stmt = rec.Find("statement");
    const obs::Json* wall = rec.Find("wall_us");
    const obs::Json* disk = rec.Find("disk_us");
    const obs::Json* pages = rec.Find("pages");
    const obs::Json* samples = rec.Find("samples");
    const obs::Json* session = rec.Find("session");
    const obs::Json* ok = rec.Find("ok");
    std::printf("  %-10s %10.0f %10.0f %8.0f %10.0f %s%s\n",
                stmt ? stmt->AsString().c_str() : "?",
                wall ? wall->AsNumber() : 0.0, disk ? disk->AsNumber() : 0.0,
                pages ? pages->AsNumber() : 0.0,
                samples ? samples->AsNumber() : 0.0,
                session ? session->AsString().c_str() : "",
                ok != nullptr && !ok->AsBool() ? "  [FAILED]" : "");
  }
}

int Main(int argc, char** argv) {
  std::string path;
  bool once = false;
  uint64_t interval_ms = 1000;
  size_t slow_rows = 5;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--once") {
      once = true;
    } else if (arg.rfind("--interval=", 0) == 0) {
      interval_ms = std::strtoull(arg.c_str() + 11, nullptr, 10);
      if (interval_ms == 0) interval_ms = 1000;
    } else if (arg.rfind("--slow=", 0) == 0) {
      slow_rows = std::strtoull(arg.c_str() + 7, nullptr, 10);
    } else if (arg == "--help" || arg.rfind("--", 0) == 0) {
      return Usage();
    } else if (path.empty()) {
      path = std::move(arg);
    } else {
      return Usage();
    }
  }
  if (path.empty()) return Usage();

  if (once) {
    Render(ReadLastPoints(path, 2), slow_rows);
    return 0;
  }
  for (;;) {
    std::vector<Point> points = ReadLastPoints(path, 2);
    // ANSI clear screen + home, then redraw — classic top(1) refresh.
    std::printf("\x1b[2J\x1b[H");
    Render(points, slow_rows);
    std::fflush(stdout);
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
  }
}

}  // namespace
}  // namespace msv

int main(int argc, char** argv) { return msv::Main(argc, argv); }
