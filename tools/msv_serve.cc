// msv_serve: the MSVQL network server, and a one-shot client for it.
//
// Server mode (default):
//
//   msv_serve --dir=/var/lib/msv --port=7437 --workers=8
//   msv_serve --mem --rows=1000000 --port=0         # demo: in-memory data
//
// opens the catalog in --dir (or generates --rows of SALE data in a
// private in-memory env with --mem), binds --host:--port and serves the
// length-prefixed JSON protocol (see src/serve/protocol.h) until SIGINT /
// SIGTERM. --metrics-file=PATH starts the metrics poller exporting
// JSON-lines snapshots — the file msv_top and the Prometheus bridge tail.
//
// Client mode:
//
//   msv_serve --connect=127.0.0.1:7437 --query="ESTIMATE AVG(amount)
//       FROM sv WHERE day BETWEEN 1 AND 30000 WITHIN 2%;"
//
// sends one request and pretty-prints the response JSON.
//
// Environment defaults (flags win): MSV_SERVE_PORT, MSV_SERVE_WORKERS,
// MSV_SERVE_QUEUE, MSV_SLOW_QUERY_US (arms the slow-query log inside the
// executor).

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>

#include "io/env.h"
#include "obs/log.h"
#include "obs/timeseries.h"
#include "query/executor.h"
#include "serve/client.h"
#include "serve/server.h"

namespace msv {
namespace {

volatile std::sig_atomic_t g_stop = 0;
void HandleSignal(int) { g_stop = 1; }

int Usage() {
  std::fprintf(
      stderr,
      "usage: msv_serve [--dir=PATH | --mem] [--host=ADDR] [--port=N]\n"
      "                 [--workers=N] [--queue=N] [--rows=N] [--seed=N]\n"
      "                 [--metrics-file=PATH]\n"
      "       msv_serve --connect=HOST:PORT --query=STATEMENT\n");
  return 2;
}

uint64_t EnvOr(const char* name, uint64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::strtoull(v, nullptr, 10);
}

int RunClient(const std::string& target, const std::string& query) {
  const size_t colon = target.rfind(':');
  if (colon == std::string::npos) {
    std::fprintf(stderr, "msv_serve: --connect needs HOST:PORT\n");
    return 2;
  }
  const std::string host = target.substr(0, colon);
  const int port = std::atoi(target.c_str() + colon + 1);
  auto client = serve::Client::Connect(host, port);
  if (!client.ok()) {
    std::fprintf(stderr, "msv_serve: %s\n",
                 std::string(client.status().message()).c_str());
    return 1;
  }
  auto response = (*client)->Call(query);
  if (!response.ok()) {
    std::fprintf(stderr, "msv_serve: %s\n",
                 std::string(response.status().message()).c_str());
    return 1;
  }
  std::printf("%s\n", response->Dump(2).c_str());
  return 0;
}

int RunServer(const std::map<std::string, std::string>& flags) {
  auto flag = [&flags](const std::string& key,
                       const std::string& fallback) -> std::string {
    auto it = flags.find(key);
    return it == flags.end() ? fallback : it->second;
  };

  std::unique_ptr<io::Env> env;
  const std::string dir = flag("dir", "");
  const bool mem = flags.count("mem") != 0;
  if (mem == !dir.empty()) {
    std::fprintf(stderr, "msv_serve: pass exactly one of --dir, --mem\n");
    return 2;
  }
  env = mem ? io::NewMemEnv() : io::NewPosixEnv(dir);

  auto executor = query::Executor::Open(env.get());
  if (!executor.ok()) {
    std::fprintf(stderr, "msv_serve: open: %s\n",
                 std::string(executor.status().message()).c_str());
    return 1;
  }

  if (mem) {  // demo data so a fresh server answers queries immediately
    const std::string rows = flag("rows", "1000000");
    const std::string seed = flag("seed", "42");
    auto bootstrap = (*executor)->Run(
        "GENERATE TABLE sale ROWS " + rows + " SEED " + seed +
        "; CREATE MATERIALIZED SAMPLE VIEW sv AS SELECT * FROM sale INDEX "
        "ON day;");
    if (!bootstrap.ok()) {
      std::fprintf(stderr, "msv_serve: bootstrap: %s\n",
                   std::string(bootstrap.status().message()).c_str());
      return 1;
    }
    std::printf("bootstrapped in-memory demo: %s rows, view sv ON day\n",
                rows.c_str());
  }

  serve::ServerOptions options;
  options.host = flag("host", "127.0.0.1");
  options.port = static_cast<int>(
      std::strtoul(flag("port", std::to_string(EnvOr("MSV_SERVE_PORT", 7437)))
                       .c_str(),
                   nullptr, 10));
  options.workers = static_cast<int>(std::strtoul(
      flag("workers", std::to_string(EnvOr("MSV_SERVE_WORKERS", 4))).c_str(),
      nullptr, 10));
  options.max_queue = std::strtoul(
      flag("queue", std::to_string(EnvOr("MSV_SERVE_QUEUE", 128))).c_str(),
      nullptr, 10);

  serve::Server server(executor->get(), options);
  Status status = server.Start();
  if (!status.ok()) {
    std::fprintf(stderr, "msv_serve: %s\n",
                 std::string(status.message()).c_str());
    return 1;
  }
  std::printf("msv_serve: listening on %s:%d (%d workers, queue %zu)\n",
              options.host.c_str(), server.port(), options.workers,
              options.max_queue);
  std::fflush(stdout);

  std::unique_ptr<obs::MetricsPoller> poller;
  const std::string metrics_file = flag("metrics-file", "");
  if (!metrics_file.empty()) {
    obs::MetricsPollerOptions poller_options;
    poller_options.export_path = metrics_file;
    poller = std::make_unique<obs::MetricsPoller>(poller_options);
    poller->Start();
    std::printf("msv_serve: exporting metrics to %s\n", metrics_file.c_str());
  }

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (!g_stop) {
    struct timespec ts{0, 100 * 1000 * 1000};
    nanosleep(&ts, nullptr);
  }
  std::printf("msv_serve: shutting down\n");
  if (poller) poller->Stop();
  server.Stop();
  return 0;
}

int Main(int argc, char** argv) {
  std::map<std::string, std::string> flags;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) return Usage();
    arg = arg.substr(2);
    const size_t eq = arg.find('=');
    if (eq == std::string::npos) {
      flags[arg] = "";
    } else {
      flags[arg.substr(0, eq)] = arg.substr(eq + 1);
    }
  }
  if (flags.count("help")) return Usage();
  if (flags.count("connect") || flags.count("query")) {
    if (!flags.count("connect") || !flags.count("query")) {
      std::fprintf(stderr,
                   "msv_serve: client mode needs both --connect and --query\n");
      return 2;
    }
    return RunClient(flags["connect"], flags["query"]);
  }
  return RunServer(flags);
}

}  // namespace
}  // namespace msv

int main(int argc, char** argv) { return msv::Main(argc, argv); }
