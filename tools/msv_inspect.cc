// msv_inspect: offline inspection and integrity scrubbing of MSV files
// (ACE trees and heap files), in the spirit of RocksDB's sst_dump.
//
// Usage:
//   msv_inspect <dir> stats <file>        print geometry + size breakdown
//   msv_inspect <dir> verify <file>       full scrub: per-page leaf CRCs,
//                                         format-v2 region checksums
//                                         (internal nodes + directory),
//                                         headers, counts, containment
//   msv_inspect <dir> leaf <file> <n>     dump one leaf's section sizes
//   msv_inspect <dir> histogram <file>    leaf-size histogram
//
// The global flag --metrics (or --metrics=json / --metrics=prom)
// appends a dump of the process metrics registry after any command — e.g. `verify --metrics`
// shows the per-check verify.<phase>_us durations alongside the report.
//
// <dir> is a host filesystem directory; <file> the ACE tree (or heap
// file, for `stats`) inside it. Exit code 0 = healthy, 1 = corruption.

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/ace_tree.h"
#include "io/env.h"
#include "obs/metrics.h"
#include "storage/heap_file.h"
#include "storage/record.h"
#include "util/histogram.h"

namespace msv {
namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: msv_inspect <dir> stats|verify|histogram <file>\n"
               "       msv_inspect <dir> leaf <file> <leaf-number>\n"
               "       (commands may also be spelled --verify etc.;\n"
               "        add --metrics, --metrics=json or --metrics=prom to\n"
               "        dump the metrics registry after the command)\n");
  return 2;
}

// The tool does not know the indexed layout; a 1-column layout with the
// stored record size and key at offset 0 is enough for read-side checks
// of 1-d trees, and the superblock's key_dims tells us the real arity.
Result<std::unique_ptr<core::AceTree>> OpenTree(io::Env* env,
                                                const std::string& name) {
  // Peek at the superblock to learn record size and key dimensionality.
  MSV_ASSIGN_OR_RETURN(std::unique_ptr<io::File> file,
                       env->OpenFile(name, /*create=*/false));
  char super[core::kSuperblockSize];
  MSV_RETURN_IF_ERROR(file->ReadExact(0, sizeof(super), super));
  MSV_ASSIGN_OR_RETURN(core::AceMeta meta, core::DecodeSuperblock(super));
  storage::RecordLayout layout;
  layout.record_size = meta.record_size;
  // Synthesize key offsets; the SALE schema's (0, 8) works for files
  // produced by this library. Only used for key decoding, not verified.
  for (uint32_t d = 0; d < meta.key_dims; ++d) {
    layout.key_offsets.push_back(8ul * d);
  }
  return core::AceTree::Open(env, name, layout);
}

int CmdStats(io::Env* env, const std::string& name) {
  // Heap file?
  if (auto heap = storage::HeapFile::Open(env, name); heap.ok()) {
    std::printf("heap file %s\n  records:     %" PRIu64
                "\n  record size: %zu B\n  file bytes:  %" PRIu64 "\n",
                name.c_str(), heap.value()->record_count(),
                heap.value()->record_size(), heap.value()->file_bytes());
    return 0;
  }
  auto tree_or = OpenTree(env, name);
  if (!tree_or.ok()) {
    std::fprintf(stderr, "cannot open %s: %s\n", name.c_str(),
                 tree_or.status().ToString().c_str());
    return 1;
  }
  const auto& tree = *tree_or.value();
  const auto& meta = tree.meta();
  std::printf("ACE tree %s\n", name.c_str());
  std::printf("  records:        %" PRIu64 "\n", meta.num_records);
  std::printf("  record size:    %zu B\n", meta.record_size);
  std::printf("  key dims:       %u\n", meta.key_dims);
  std::printf("  height h:       %u (sections per leaf)\n", meta.height);
  std::printf("  leaves F:       %" PRIu64 "\n", meta.num_leaves);
  std::printf("  E[mu]:          %.2f records/section\n",
              static_cast<double>(meta.num_records) /
                  (static_cast<double>(meta.height) *
                   static_cast<double>(meta.num_leaves)));
  std::printf("  domain:         ");
  for (uint32_t d = 0; d < meta.key_dims; ++d) {
    std::printf("%s[%.6g, %.6g)", d ? " x " : "", meta.domain_min[d],
                meta.domain_max[d]);
  }
  std::printf("\n");
  std::printf("  regions:        internal@%" PRIu64 " directory@%" PRIu64
              " data@%" PRIu64 "\n",
              meta.internal_offset, meta.directory_offset, meta.data_offset);
  std::printf("  file bytes:     %" PRIu64 " (overhead %.3f%%)\n",
              tree.file_bytes(),
              100.0 *
                  (static_cast<double>(tree.file_bytes()) -
                   static_cast<double>(meta.num_records * meta.record_size)) /
                  static_cast<double>(meta.num_records * meta.record_size));
  return 0;
}

int CmdVerify(io::Env* env, const std::string& name) {
  auto tree_or = OpenTree(env, name);
  if (!tree_or.ok()) {
    std::fprintf(stderr, "FAIL open: %s\n",
                 tree_or.status().ToString().c_str());
    return 1;
  }
  // Full structural scrub: per-page leaf CRCs, the format-v2 region
  // checksums over the internal-node and directory regions (re-read from
  // disk, so corruption after Open is still caught), headers, directory
  // geometry, split-tree counts, Lemma-1 disjointness, Lemma-2 section
  // sizes and leaf-set partitioning (see AceTree::CheckInvariants).
  core::InvariantReport report = tree_or.value()->CheckInvariants();
  const int rc = report.ok() ? 0 : 1;
  if (report.ok()) {
    std::printf("%s\n", report.ToString().c_str());
  } else {
    std::fprintf(stderr, "FAIL %s", report.ToString().c_str());
  }
  // Per-check durations (also published as verify.<phase>_us counters in
  // the metrics registry) so slow phases on large trees are visible.
  std::printf("per-check durations:\n");
  for (const auto& [phase, us] : report.check_us) {
    std::printf("  verify.%s_us %" PRIu64 "\n", phase.c_str(), us);
  }
  return rc;
}

int CmdLeaf(io::Env* env, const std::string& name, uint64_t leaf) {
  auto tree_or = OpenTree(env, name);
  if (!tree_or.ok()) {
    std::fprintf(stderr, "cannot open: %s\n",
                 tree_or.status().ToString().c_str());
    return 1;
  }
  auto data_or = tree_or.value()->ReadLeaf(leaf);
  if (!data_or.ok()) {
    std::fprintf(stderr, "cannot read leaf: %s\n",
                 data_or.status().ToString().c_str());
    return 1;
  }
  const auto& data = data_or.value();
  std::printf("leaf %" PRIu64 ": %" PRIu64 " records\n", leaf,
              data.TotalRecords());
  for (size_t s = 1; s <= data.sections.size(); ++s) {
    std::printf("  section %zu: %zu records\n", s, data.SectionCount(s));
  }
  return 0;
}

int CmdHistogram(io::Env* env, const std::string& name) {
  auto tree_or = OpenTree(env, name);
  if (!tree_or.ok()) {
    std::fprintf(stderr, "cannot open: %s\n",
                 tree_or.status().ToString().c_str());
    return 1;
  }
  const auto& tree = *tree_or.value();
  double expected = static_cast<double>(tree.meta().num_records) /
                    static_cast<double>(tree.meta().num_leaves);
  Histogram hist(0, expected * 2.5, 25);
  for (uint64_t leaf = 0; leaf < tree.meta().num_leaves; ++leaf) {
    auto data = tree.ReadLeaf(leaf);
    if (!data.ok()) continue;
    hist.Add(static_cast<double>(data.value().TotalRecords()));
  }
  std::printf("leaf record-count distribution (expected mean %.1f):\n%s",
              expected, hist.ToString().c_str());
  return 0;
}

int Main(int argc, char** argv) {
  // Peel off the global --metrics[=json|=text] flag wherever it appears;
  // what remains are the positional arguments.
  enum class Metrics { kNone, kText, kJson, kProm };
  Metrics metrics = Metrics::kNone;
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--metrics" || arg == "--metrics=text") {
      metrics = Metrics::kText;
    } else if (arg == "--metrics=json") {
      metrics = Metrics::kJson;
    } else if (arg == "--metrics=prom") {
      metrics = Metrics::kProm;
    } else {
      args.push_back(std::move(arg));
    }
  }
  if (args.size() < 3) return Usage();
  auto env = io::NewPosixEnv(args[0]);
  std::string command = args[1];
  // Accept both spellings: `msv_inspect <dir> verify <file>` and
  // `msv_inspect <dir> --verify <file>`.
  if (command.rfind("--", 0) == 0) command = command.substr(2);
  const std::string& file = args[2];
  int rc;
  if (command == "stats") {
    rc = CmdStats(env.get(), file);
  } else if (command == "verify") {
    rc = CmdVerify(env.get(), file);
  } else if (command == "histogram") {
    rc = CmdHistogram(env.get(), file);
  } else if (command == "leaf" && args.size() >= 4) {
    rc = CmdLeaf(env.get(), file, std::strtoull(args[3].c_str(), nullptr, 10));
  } else {
    return Usage();
  }
  if (metrics != Metrics::kNone) {
    // Inspect runs on a plain Posix env, so no DiskDevice is ever
    // constructed and the I/O metric families would be absent from the
    // dump. Pre-register them (zero-valued) so scripts scraping the
    // output see a stable schema whether or not a simulated device ran.
    obs::MetricRegistry& reg = obs::MetricRegistry::Global();
    for (const char* name :
         {"io.disk.reads", "io.disk.writes", "io.disk.read_bytes",
          "io.disk.written_bytes", "io.disk.seeks", "io.disk.sequential_ios",
          "io.disk.busy_us", "io.batch.accesses", "io.batch.pages"}) {
      reg.GetCounter(name);
    }
    reg.GetHistogram("io.disk.access_us");
    reg.GetHistogram("io.batch.pages_per_access");
    if (metrics == Metrics::kProm) {
      std::printf("%s", reg.DumpPrometheus().c_str());
    } else {
      obs::MetricsSnapshot snap = reg.Snapshot();
      if (metrics == Metrics::kJson) {
        std::printf("%s\n", snap.ToJson().Dump(2).c_str());
      } else {
        std::printf("%s", snap.ToText().c_str());
      }
    }
  }
  return rc;
}

}  // namespace
}  // namespace msv

int main(int argc, char** argv) { return msv::Main(argc, argv); }
