#!/usr/bin/env python3
"""Repo lint runner: clang-tidy (when installed) plus MSV-custom rules.

Usage:
    tools/lint.py [--fix-none] [paths...]          # default: src tools
    tools/lint.py --no-clang-tidy src tests
    tools/lint.py --require-clang-tidy src         # CI: fail if missing
    tools/lint.py --diff origin/main src           # clang-tidy only on
                                                   # files changed vs REF

Custom rules (things clang-tidy cannot express for this repo):

  msv-status-nodiscard   class Status / class Result must carry
                         [[nodiscard]] so ignored error returns are
                         compile-time warnings everywhere.
  msv-status-ignored     a Status must not be discarded by bolting
                         `.ok();` onto a call statement or by a bare
                         `(void)call(...);` cast. The sanctioned idiom is
                         `status.IgnoreError();  // why` (see status.h).
  msv-include-guard      headers use #ifndef MSV_<PATH>_H_ guards derived
                         from their path (src/ stripped; tests/, bench/,
                         tools/ kept), with the closing
                         `#endif  // GUARD` comment.
  msv-naked-new          no naked new/delete outside src/io: `new` only
                         immediately wrapped in unique_ptr/shared_ptr or
                         make_unique/make_shared; `delete` not at all.
  msv-no-bare-assert     library code uses MSV_CHECK / MSV_DCHECK (which
                         log the failing expression) instead of assert().
  msv-stats-direct       I/O stats structs (stats_/totals_/baseline_
                         members) may only be mutated inside the
                         instrumented accessors in src/io/disk_model.cc
                         and src/io/buffer_pool.cc, which keep the
                         structs and the metrics registry in lock-step.
  msv-no-raw-seek        no fseek/fseeko/ftell/ftello/rewind in src/
                         outside the Env implementation (src/io/env.cc).
                         Seek-then-read on a shared FILE* races and the
                         long offset truncates past 2 GiB; all file I/O
                         goes through Env's positional Read/Write.
  msv-batched-io         no scalar Read()/ReadExact() calls inside loops
                         in the src/core and src/extsort hot paths: a
                         page-per-call loop pays one modeled device
                         access per page where File::ReadBatch /
                         AceTree::ReadLeaves / BufferPool::GetBatch
                         coalesce the adjacent run into one.
  msv-hot-path-alloc     no per-record std::string construction and no
                         calls through stored std::function callables
                         inside batch loops in src/core / src/sampling:
                         the hot path works on RecordSpans backed by the
                         per-query Arena and folds batches through
                         compiled FieldAccessors (DESIGN.md §15). Cold
                         paths (builders, manifest parsing) carry
                         `// NOLINT(msv-hot-path-alloc)` with a reason.
  msv-raw-logging        no raw stderr diagnostics (fprintf(stderr, ...),
                         std::cerr/std::clog, perror, fputs to stderr)
                         in src/ outside src/obs/log.cc: library code
                         logs through MSV_LOG / obs::LogEvent so every
                         message is leveled, rate-limited and mirrored
                         to the JSON sink. The structured logger's own
                         stderr emission and the CHECK-failure crash
                         path carry `// NOLINT(msv-raw-logging)` with a
                         justification.
  msv-raw-sync           no raw std sync primitives (std::mutex,
                         std::shared_mutex, std::lock_guard,
                         std::unique_lock, std::shared_lock,
                         std::scoped_lock, std::condition_variable, or
                         their <mutex>/<shared_mutex>/
                         <condition_variable> includes) outside
                         src/util/sync.h. The capability-annotated
                         wrappers there are what Clang's -Wthread-safety
                         analysis checks; a raw primitive is invisible
                         to it. Exemption: `// NOLINT(msv-raw-sync)`
                         with a justifying comment.

A finding is suppressed by `// NOLINT` or `// NOLINT(<rule>)` on the
same line. Exit code: 0 clean, 1 findings, 2 usage/environment error.
"""

import argparse
import re
import shutil
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

CC_EXTS = {".cc", ".cpp", ".cxx"}
H_EXTS = {".h", ".hpp"}

NOLINT_RE = re.compile(r"//\s*NOLINT(?:\((?P<rules>[^)]*)\))?")


def is_suppressed(line: str, rule: str) -> bool:
    m = NOLINT_RE.search(line)
    if not m:
        return False
    rules = m.group("rules")
    return rules is None or rule in rules


class Finding:
    def __init__(self, path: Path, line_no: int, rule: str, message: str):
        self.path = path
        self.line_no = line_no
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        rel = self.path.relative_to(REPO_ROOT)
        return f"{rel}:{self.line_no}: [{self.rule}] {self.message}"


def strip_comments_and_strings(line: str) -> str:
    """Crude but sufficient: drop // comments and string/char literals so
    rule regexes do not fire on prose or formats."""
    line = re.sub(r'"(\\.|[^"\\])*"', '""', line)
    line = re.sub(r"'(\\.|[^'\\])*'", "''", line)
    return line.split("//", 1)[0]


# --- msv-include-guard -----------------------------------------------------

def expected_guard(path: Path) -> str:
    rel = path.relative_to(REPO_ROOT)
    parts = list(rel.parts)
    if parts[0] == "src":
        parts = parts[1:]
    stem = "_".join(parts)
    stem = re.sub(r"[^A-Za-z0-9]", "_", stem)
    return f"MSV_{stem.upper()}_"  # foo.h -> MSV_..._FOO_H_


def check_include_guard(path: Path, lines: list[str], findings: list[Finding]):
    guard = expected_guard(path)
    ifndef_re = re.compile(r"#ifndef\s+(\S+)")
    found = None
    for no, line in enumerate(lines, 1):
        m = ifndef_re.search(line)
        if m:
            found = (no, m.group(1))
            break
    if found is None:
        findings.append(Finding(path, 1, "msv-include-guard",
                                f"missing include guard (expected {guard})"))
        return
    no, actual = found
    if actual != guard:
        if is_suppressed(lines[no - 1], "msv-include-guard"):
            return
        findings.append(Finding(path, no, "msv-include-guard",
                                f"guard {actual} != expected {guard}"))
        return
    define_ok = any(re.search(rf"#define\s+{re.escape(guard)}\b", l)
                    for l in lines[no - 1:no + 2])
    if not define_ok:
        findings.append(Finding(path, no, "msv-include-guard",
                                f"#ifndef {guard} not followed by #define"))
    endif_re = re.compile(rf"#endif\s*//\s*{re.escape(guard)}\s*$")
    tail = [l for l in lines[-5:] if l.strip()]
    if not any(endif_re.search(l) for l in tail):
        findings.append(Finding(path, len(lines), "msv-include-guard",
                                f"missing trailing '#endif  // {guard}'"))


# --- msv-status-nodiscard --------------------------------------------------

def check_status_nodiscard(findings: list[Finding]):
    for rel, cls in (("src/util/status.h", "Status"),
                     ("src/util/result.h", "Result")):
        path = REPO_ROOT / rel
        if not path.exists():
            continue
        text = path.read_text()
        decl = re.search(rf"class\s+(\[\[nodiscard\]\]\s+)?{cls}\b", text)
        if decl is None or decl.group(1) is None:
            line_no = text[:decl.start()].count("\n") + 1 if decl else 1
            findings.append(Finding(path, line_no, "msv-status-nodiscard",
                                    f"class {cls} must be [[nodiscard]]"))


# --- msv-status-ignored ----------------------------------------------------

# A statement that ends in `.ok();` without consuming the bool: the
# classic way to launder a [[nodiscard]] Status.
OK_DISCARD_RE = re.compile(r"[\w\)\]]\s*\.\s*ok\s*\(\s*\)\s*;\s*$")
OK_DISCARD_KEYWORD_RE = re.compile(r"^(return|if|while|for|do)\b")


def is_ok_discard(line: str) -> bool:
    s = line.strip()
    if not OK_DISCARD_RE.search(s):
        return False
    # `bool b = f().ok();`, `x == f().ok();`, control flow, and stream
    # output all consume the bool; a plain call statement does not.
    return (OK_DISCARD_KEYWORD_RE.match(s) is None and "=" not in s
            and "<<" not in s)
# `(void)foo(...)` / `(void)obj->foo(...)`: discards a call result. Plain
# `(void)identifier;` (unused-parameter silencing) stays legal.
VOID_CALL_RE = re.compile(r"\(\s*void\s*\)\s*[\w:>.\->]+\s*\(")


def check_status_ignored(path: Path, lines: list[str],
                         findings: list[Finding]):
    for no, raw in enumerate(lines, 1):
        line = strip_comments_and_strings(raw)
        if is_ok_discard(line):
            if not is_suppressed(raw, "msv-status-ignored"):
                findings.append(Finding(
                    path, no, "msv-status-ignored",
                    "Status discarded via '.ok();' — use "
                    "IgnoreError() with a justifying comment"))
        elif VOID_CALL_RE.search(line):
            if not is_suppressed(raw, "msv-status-ignored"):
                findings.append(Finding(
                    path, no, "msv-status-ignored",
                    "call result discarded via '(void)' cast — if it "
                    "returns Status, use IgnoreError(); otherwise NOLINT "
                    "with a reason"))


# --- msv-naked-new ---------------------------------------------------------

NEW_RE = re.compile(r"(?<![\w.])new\s+[A-Za-z_:<]")
DELETE_RE = re.compile(r"(?<![\w.])delete(\[\])?\s+[A-Za-z_(*]")
SMART_WRAP_RE = re.compile(r"unique_ptr|shared_ptr|make_unique|make_shared")


def check_naked_new(path: Path, lines: list[str], findings: list[Finding]):
    rel = path.relative_to(REPO_ROOT)
    if rel.parts[:2] == ("src", "io"):
        return  # the raw-I/O layer may manage memory manually
    for no, raw in enumerate(lines, 1):
        line = strip_comments_and_strings(raw)
        prev = strip_comments_and_strings(lines[no - 2]) if no >= 2 else ""
        if NEW_RE.search(line):
            # `new X` is fine when the smart-pointer wrap is on the same
            # or the preceding line (continuation of the wrap call).
            if SMART_WRAP_RE.search(line) or SMART_WRAP_RE.search(prev):
                continue
            if is_suppressed(raw, "msv-naked-new"):
                continue
            findings.append(Finding(
                path, no, "msv-naked-new",
                "naked 'new' outside src/io — wrap in "
                "unique_ptr/make_unique"))
        if DELETE_RE.search(line) and "= delete" not in line:
            if is_suppressed(raw, "msv-naked-new"):
                continue
            findings.append(Finding(
                path, no, "msv-naked-new",
                "naked 'delete' outside src/io — use owning smart "
                "pointers"))


# --- msv-no-bare-assert ----------------------------------------------------

ASSERT_RE = re.compile(r"(?<![\w.])assert\s*\(")


def check_bare_assert(path: Path, lines: list[str], findings: list[Finding]):
    rel = path.relative_to(REPO_ROOT)
    if rel.parts[0] != "src":
        return  # tests/bench may use gtest/assert freely
    for no, raw in enumerate(lines, 1):
        line = strip_comments_and_strings(raw)
        if ASSERT_RE.search(line) and "static_assert" not in line:
            if is_suppressed(raw, "msv-no-bare-assert"):
                continue
            findings.append(Finding(
                path, no, "msv-no-bare-assert",
                "bare assert() — use MSV_CHECK/MSV_DCHECK so the failing "
                "expression is logged (see util/logging.h)"))


# --- msv-stats-direct ------------------------------------------------------

# Files that own the stats structs and mirror every mutation into the
# metrics registry. Everywhere else, writes to these members bypass the
# instrumentation and desynchronize struct totals from traced deltas.
STATS_ALLOWED = {
    ("src", "io", "disk_model.cc"),
    ("src", "io", "buffer_pool.cc"),
}
STATS_MEMBER = r"(?:stats_|totals_|baseline_)"
# Field writes (stats_.reads += n, ++totals_.reads, totals_.busy_us = x)
# and whole-struct writes (baseline_ = totals_).
STATS_WRITE_RE = re.compile(
    rf"(?:(?:\+\+|--)\s*{STATS_MEMBER}\s*\."
    rf"|\b{STATS_MEMBER}\s*\.\s*\w+\s*(?:\+\+|--|[+\-*/|&^]?=[^=])"
    rf"|\b{STATS_MEMBER}\s*=[^=])")


def check_stats_direct(path: Path, lines: list[str],
                       findings: list[Finding]):
    rel = path.relative_to(REPO_ROOT)
    if rel.parts[0] != "src" or rel.parts in STATS_ALLOWED:
        return
    for no, raw in enumerate(lines, 1):
        line = strip_comments_and_strings(raw)
        if STATS_WRITE_RE.search(line):
            if is_suppressed(raw, "msv-stats-direct"):
                continue
            findings.append(Finding(
                path, no, "msv-stats-direct",
                "direct mutation of an I/O stats struct outside the "
                "instrumented accessors — route it through "
                "DiskDevice/BufferPool so the metrics registry stays in "
                "sync"))


# --- msv-no-raw-seek -------------------------------------------------------

# Seek-based stdio positioning in library code: `fseek(f, long, ...)`
# silently truncates offsets past 2 GiB, and seek-then-read on a FILE*
# shared across threads races the cursor. Env's positional Read/Write
# (pread/pwrite underneath) has neither problem, so raw seeks are only
# tolerated inside the Env implementation itself.
RAW_SEEK_ALLOWED = {
    ("src", "io", "env.cc"),
}
RAW_SEEK_RE = re.compile(r"(?<![\w.])(?:fseeko?|ftello?|rewind)\s*\(")


def check_raw_seek(path: Path, lines: list[str], findings: list[Finding]):
    rel = path.relative_to(REPO_ROOT)
    if rel.parts[0] != "src" or rel.parts in RAW_SEEK_ALLOWED:
        return
    for no, raw in enumerate(lines, 1):
        line = strip_comments_and_strings(raw)
        if RAW_SEEK_RE.search(line):
            if is_suppressed(raw, "msv-no-raw-seek"):
                continue
            findings.append(Finding(
                path, no, "msv-no-raw-seek",
                "raw fseek/ftell/rewind outside src/io/env.cc — stdio "
                "offsets truncate past 2 GiB and seek-then-read races; "
                "use Env's positional Read/Write"))


# --- msv-batched-io --------------------------------------------------------

# Hot-path page-fetch loops in the sampler and external-sort layers must
# use the batched interfaces (File::ReadBatch, AceTree::ReadLeaves,
# BufferPool::GetBatch): a scalar Read per iteration pays one modeled
# device access per page, where a coalesced batch pays one seek for the
# whole adjacent run. ace_verify.cc is exempt — the scrubber walks pages
# one at a time on purpose so a torn page is attributed precisely.
BATCHED_IO_DIRS = {("src", "core"), ("src", "extsort")}
BATCHED_IO_ALLOWED = {("src", "core", "ace_verify.cc")}
LOOP_HEAD_RE = re.compile(r"(?<![\w.])(?:for|while)\s*\(")
SCALAR_READ_RE = re.compile(r"(?:->|\.)\s*(?:Read|ReadExact)\s*\(")


def check_batched_io(path: Path, lines: list[str], findings: list[Finding]):
    rel = path.relative_to(REPO_ROOT)
    if (path.suffix not in CC_EXTS or rel.parts[:2] not in BATCHED_IO_DIRS
            or rel.parts in BATCHED_IO_ALLOWED):
        return
    # Lexical loop tracker: brace depth plus the depths at which loop
    # bodies opened. Crude (single-statement loop bodies without braces
    # are missed) but dependency-free and good enough to keep scalar
    # read loops from creeping back into the hot paths.
    depth = 0
    loop_depths: list[int] = []
    pending_loop = False
    for no, raw in enumerate(lines, 1):
        line = strip_comments_and_strings(raw)
        if LOOP_HEAD_RE.search(line):
            pending_loop = True
        for ch in line:
            if ch == "{":
                depth += 1
                if pending_loop:
                    loop_depths.append(depth)
                    pending_loop = False
            elif ch == "}":
                if loop_depths and loop_depths[-1] == depth:
                    loop_depths.pop()
                depth -= 1
        if loop_depths and SCALAR_READ_RE.search(line):
            if is_suppressed(raw, "msv-batched-io"):
                continue
            findings.append(Finding(
                path, no, "msv-batched-io",
                "scalar Read()/ReadExact() in a loop on a hot path — "
                "coalesce the run with File::ReadBatch / "
                "AceTree::ReadLeaves / BufferPool::GetBatch (one modeled "
                "seek per adjacent run instead of one per page)"))


# --- msv-hot-path-alloc ----------------------------------------------------

# The per-record budget on the sampling hot path (DESIGN.md §15) is a few
# nanoseconds; a std::string construction or a std::function call inside
# a batch loop is 10-100x that. Inside loops in src/core and src/sampling
# .cc files, flag (a) std::string objects (declarations/temporaries —
# references and pointers are free) and (b) calls through stored
# callables (data members end in `_`, so `name_(...)` is a functor
# invocation, std::function on every offender to date). Cold paths
# (builders, manifest parsing, ad-hoc expression aggregation) carry
# `// NOLINT(msv-hot-path-alloc)` with a justifying comment.
HOT_PATH_DIRS = {("src", "core"), ("src", "sampling")}
HOT_PATH_STRING_RE = re.compile(r"\bstd\s*::\s*string\b(?!\s*[&*>])")
HOT_PATH_FUNCTOR_RE = re.compile(r"(?<![\w.>])[a-z]\w*_\s*\(")


def check_hot_path_alloc(path: Path, lines: list[str],
                         findings: list[Finding]):
    rel = path.relative_to(REPO_ROOT)
    if path.suffix not in CC_EXTS or rel.parts[:2] not in HOT_PATH_DIRS:
        return
    # Same lexical loop tracker as msv-batched-io, plus: a braceless
    # single-statement loop (`for (...) stmt;`) must not leave the
    # pending flag armed, or the next unrelated `{` would be mistaken
    # for a loop body. Clearing on a semicolon-only line can miss a
    # loop whose multi-line header splits before the `{` — crude, but
    # missing a loop beats flagging a whole function.
    depth = 0
    loop_depths: list[int] = []
    pending_loop = False
    for no, raw in enumerate(lines, 1):
        line = strip_comments_and_strings(raw)
        if LOOP_HEAD_RE.search(line):
            pending_loop = True
        for ch in line:
            if ch == "{":
                depth += 1
                if pending_loop:
                    loop_depths.append(depth)
                    pending_loop = False
            elif ch == "}":
                if loop_depths and loop_depths[-1] == depth:
                    loop_depths.pop()
                depth -= 1
        if pending_loop and "{" not in line and ";" in line:
            pending_loop = False
        if not loop_depths:
            continue
        if HOT_PATH_STRING_RE.search(line):
            if not is_suppressed(raw, "msv-hot-path-alloc"):
                findings.append(Finding(
                    path, no, "msv-hot-path-alloc",
                    "std::string constructed inside a batch loop on the "
                    "hot path — use RecordSpan + the per-query Arena "
                    "(see combine_engine.cc), or NOLINT with a reason if "
                    "this is a cold path"))
        elif HOT_PATH_FUNCTOR_RE.search(line):
            if not is_suppressed(raw, "msv-hot-path-alloc"):
                findings.append(Finding(
                    path, no, "msv-hot-path-alloc",
                    "call through a stored callable inside a batch loop — "
                    "compile the expression to a storage::FieldAccessor "
                    "(record_view.h), or NOLINT with a reason if this is "
                    "a cold path"))


# --- msv-raw-logging -------------------------------------------------------

# Library diagnostics must flow through MSV_LOG / obs::LogEvent (leveled,
# rate-limited, mirrored to the JSON sink). A raw stderr write bypasses
# all of that and is invisible to log collectors. Only the structured
# logger itself may write stderr directly; the two sanctioned raw sites
# (the logger's human-readable line, the CHECK crash path in
# util/logging.cc) carry per-line NOLINTs with reasons. tools/ and
# tests/ are out of scope — CLI output is their interface.
RAW_LOGGING_ALLOWED = {
    ("src", "obs", "log.cc"),
}
RAW_LOGGING_RE = re.compile(
    r"(?:fprintf|fputs|fputc|fwrite)\s*\([^()]*\bstderr\b"
    r"|\bstd\s*::\s*c(?:err|log)\b"
    r"|(?<![\w.])perror\s*\(")


def check_raw_logging(path: Path, lines: list[str],
                      findings: list[Finding]):
    rel = path.relative_to(REPO_ROOT)
    if rel.parts[0] != "src" or rel.parts in RAW_LOGGING_ALLOWED:
        return
    for no, raw in enumerate(lines, 1):
        line = strip_comments_and_strings(raw)
        if RAW_LOGGING_RE.search(line):
            if is_suppressed(raw, "msv-raw-logging"):
                continue
            findings.append(Finding(
                path, no, "msv-raw-logging",
                "raw stderr logging outside src/obs/log.cc — use MSV_LOG "
                "or obs::LogEvent so the message is leveled, rate-limited "
                "and reaches the JSON sink"))


# --- msv-raw-sync ----------------------------------------------------------

# The only file allowed to touch std sync primitives: the capability-
# annotated wrapper layer itself. Everywhere else uses msv::Mutex /
# SharedMutex / MutexLock / ReaderLock / WriterLock / CondVar so the
# thread-safety analysis sees every acquire and release.
RAW_SYNC_ALLOWED = {
    ("src", "util", "sync.h"),
}
RAW_SYNC_TYPE_RE = re.compile(
    r"std\s*::\s*(?:recursive_|timed_|recursive_timed_)?mutex\b"
    r"|std\s*::\s*shared_(?:timed_)?mutex\b"
    r"|std\s*::\s*(?:lock_guard|unique_lock|shared_lock|scoped_lock)\b"
    r"|std\s*::\s*condition_variable(?:_any)?\b")
RAW_SYNC_INCLUDE_RE = re.compile(
    r"#\s*include\s*<(?:mutex|shared_mutex|condition_variable)>")


def check_raw_sync(path: Path, lines: list[str], findings: list[Finding]):
    rel = path.relative_to(REPO_ROOT)
    if rel.parts in RAW_SYNC_ALLOWED:
        return
    for no, raw in enumerate(lines, 1):
        line = strip_comments_and_strings(raw)
        if RAW_SYNC_TYPE_RE.search(line) or RAW_SYNC_INCLUDE_RE.search(line):
            if is_suppressed(raw, "msv-raw-sync"):
                continue
            findings.append(Finding(
                path, no, "msv-raw-sync",
                "raw std sync primitive outside src/util/sync.h — use the "
                "capability-annotated wrappers (Mutex/MutexLock/CondVar...) "
                "so -Wthread-safety checks the locking discipline"))


# --- clang-tidy ------------------------------------------------------------

def run_clang_tidy(paths: list[Path], require: bool) -> int:
    tidy = shutil.which("clang-tidy")
    if tidy is None:
        if require:
            print("lint.py: clang-tidy not found but --require-clang-tidy "
                  "is set; install clang-tidy or drop the flag",
                  file=sys.stderr)
            return 2
        print("lint.py: clang-tidy not found; skipping clang-tidy checks",
              file=sys.stderr)
        return 0
    build_dir = None
    for cand in ("build", "build-dev", "build-ci", "build-asan-ubsan"):
        if (REPO_ROOT / cand / "compile_commands.json").exists():
            build_dir = REPO_ROOT / cand
            break
    if build_dir is None:
        cfg = subprocess.run(
            ["cmake", "-B", "build-dev", "-S", str(REPO_ROOT),
             "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON"],
            cwd=REPO_ROOT, capture_output=True, text=True)
        if cfg.returncode != 0:
            print("lint.py: cmake configure for compile_commands failed:\n"
                  + cfg.stderr, file=sys.stderr)
            return 2 if require else 0
        build_dir = REPO_ROOT / "build-dev"
    sources = [p for p in paths if p.suffix in CC_EXTS]
    if not sources:
        return 0
    cmd = [tidy, "-p", str(build_dir), "--quiet",
           *[str(s) for s in sources]]
    proc = subprocess.run(cmd, cwd=REPO_ROOT)
    return 1 if proc.returncode != 0 else 0


# --- driver ----------------------------------------------------------------

def collect_files(args_paths: list[str]) -> list[Path]:
    roots = [REPO_ROOT / p for p in (args_paths or ["src", "tools"])]
    files = []
    for root in roots:
        if root.is_file():
            files.append(root)
            continue
        if not root.is_dir():
            print(f"lint.py: no such path: {root}", file=sys.stderr)
            sys.exit(2)
        for p in sorted(root.rglob("*")):
            if p.suffix in CC_EXTS | H_EXTS and "sanitizers" not in p.parts:
                files.append(p)
    return files


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("paths", nargs="*",
                    help="files or directories (default: src tools)")
    ap.add_argument("--no-clang-tidy", action="store_true",
                    help="run only the MSV-custom rules")
    ap.add_argument("--require-clang-tidy", action="store_true",
                    help="fail (exit 2) when clang-tidy is unavailable")
    ap.add_argument("--diff", metavar="REF",
                    help="restrict clang-tidy to files changed since git "
                         "REF (custom rules still scan everything)")
    args = ap.parse_args()

    files = collect_files(args.paths)
    findings: list[Finding] = []
    check_status_nodiscard(findings)
    for path in files:
        lines = path.read_text().splitlines()
        if path.suffix in H_EXTS:
            check_include_guard(path, lines, findings)
        check_status_ignored(path, lines, findings)
        check_naked_new(path, lines, findings)
        check_bare_assert(path, lines, findings)
        check_stats_direct(path, lines, findings)
        check_raw_seek(path, lines, findings)
        check_batched_io(path, lines, findings)
        check_hot_path_alloc(path, lines, findings)
        check_raw_logging(path, lines, findings)
        check_raw_sync(path, lines, findings)

    for f in findings:
        print(f)

    tidy_files = files
    if args.diff:
        proc = subprocess.run(
            ["git", "diff", "--name-only", args.diff, "--"],
            cwd=REPO_ROOT, capture_output=True, text=True)
        if proc.returncode != 0:
            print(f"lint.py: git diff {args.diff} failed:\n{proc.stderr}",
                  file=sys.stderr)
            return 2
        changed = {(REPO_ROOT / name.strip()).resolve()
                   for name in proc.stdout.splitlines() if name.strip()}
        tidy_files = [p for p in files if p.resolve() in changed]

    tidy_rc = 0
    if not args.no_clang_tidy:
        tidy_rc = run_clang_tidy(tidy_files, args.require_clang_tidy)
    if tidy_rc == 2:
        return 2
    if findings or tidy_rc:
        print(f"lint.py: {len(findings)} custom-rule finding(s)"
              + (", clang-tidy reported issues" if tidy_rc else ""),
              file=sys.stderr)
        return 1
    print(f"lint.py: clean ({len(files)} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
