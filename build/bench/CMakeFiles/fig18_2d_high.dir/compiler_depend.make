# Empty compiler generated dependencies file for fig18_2d_high.
# This may be replaced when dependencies are built.
