file(REMOVE_RECURSE
  "CMakeFiles/fig18_2d_high.dir/fig18_2d_high.cc.o"
  "CMakeFiles/fig18_2d_high.dir/fig18_2d_high.cc.o.d"
  "fig18_2d_high"
  "fig18_2d_high.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_2d_high.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
