# Empty dependencies file for lemma1_bound.
# This may be replaced when dependencies are built.
