file(REMOVE_RECURSE
  "CMakeFiles/lemma1_bound.dir/lemma1_bound.cc.o"
  "CMakeFiles/lemma1_bound.dir/lemma1_bound.cc.o.d"
  "lemma1_bound"
  "lemma1_bound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lemma1_bound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
