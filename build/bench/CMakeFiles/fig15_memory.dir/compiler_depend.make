# Empty compiler generated dependencies file for fig15_memory.
# This may be replaced when dependencies are built.
