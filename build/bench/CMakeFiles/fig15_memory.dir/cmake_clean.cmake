file(REMOVE_RECURSE
  "CMakeFiles/fig15_memory.dir/fig15_memory.cc.o"
  "CMakeFiles/fig15_memory.dir/fig15_memory.cc.o.d"
  "fig15_memory"
  "fig15_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
