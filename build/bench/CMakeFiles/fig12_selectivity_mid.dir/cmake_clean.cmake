file(REMOVE_RECURSE
  "CMakeFiles/fig12_selectivity_mid.dir/fig12_selectivity_mid.cc.o"
  "CMakeFiles/fig12_selectivity_mid.dir/fig12_selectivity_mid.cc.o.d"
  "fig12_selectivity_mid"
  "fig12_selectivity_mid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_selectivity_mid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
