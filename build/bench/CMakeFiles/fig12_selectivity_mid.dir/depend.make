# Empty dependencies file for fig12_selectivity_mid.
# This may be replaced when dependencies are built.
