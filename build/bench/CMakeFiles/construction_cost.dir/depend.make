# Empty dependencies file for construction_cost.
# This may be replaced when dependencies are built.
