file(REMOVE_RECURSE
  "CMakeFiles/construction_cost.dir/construction_cost.cc.o"
  "CMakeFiles/construction_cost.dir/construction_cost.cc.o.d"
  "construction_cost"
  "construction_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/construction_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
