file(REMOVE_RECURSE
  "CMakeFiles/msv_bench_harness.dir/harness.cc.o"
  "CMakeFiles/msv_bench_harness.dir/harness.cc.o.d"
  "CMakeFiles/msv_bench_harness.dir/sampling_rate.cc.o"
  "CMakeFiles/msv_bench_harness.dir/sampling_rate.cc.o.d"
  "libmsv_bench_harness.a"
  "libmsv_bench_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msv_bench_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
