# Empty dependencies file for msv_bench_harness.
# This may be replaced when dependencies are built.
