file(REMOVE_RECURSE
  "libmsv_bench_harness.a"
)
