# Empty dependencies file for fig14_completion.
# This may be replaced when dependencies are built.
