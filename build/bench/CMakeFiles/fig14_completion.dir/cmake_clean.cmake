file(REMOVE_RECURSE
  "CMakeFiles/fig14_completion.dir/fig14_completion.cc.o"
  "CMakeFiles/fig14_completion.dir/fig14_completion.cc.o.d"
  "fig14_completion"
  "fig14_completion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_completion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
