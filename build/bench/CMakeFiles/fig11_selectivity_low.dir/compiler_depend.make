# Empty compiler generated dependencies file for fig11_selectivity_low.
# This may be replaced when dependencies are built.
