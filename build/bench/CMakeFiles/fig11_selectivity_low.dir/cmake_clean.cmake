file(REMOVE_RECURSE
  "CMakeFiles/fig11_selectivity_low.dir/fig11_selectivity_low.cc.o"
  "CMakeFiles/fig11_selectivity_low.dir/fig11_selectivity_low.cc.o.d"
  "fig11_selectivity_low"
  "fig11_selectivity_low.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_selectivity_low.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
