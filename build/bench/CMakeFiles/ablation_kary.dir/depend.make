# Empty dependencies file for ablation_kary.
# This may be replaced when dependencies are built.
