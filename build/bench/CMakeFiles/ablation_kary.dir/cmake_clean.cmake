file(REMOVE_RECURSE
  "CMakeFiles/ablation_kary.dir/ablation_kary.cc.o"
  "CMakeFiles/ablation_kary.dir/ablation_kary.cc.o.d"
  "ablation_kary"
  "ablation_kary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_kary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
