# Empty compiler generated dependencies file for fig13_selectivity_high.
# This may be replaced when dependencies are built.
