file(REMOVE_RECURSE
  "CMakeFiles/fig13_selectivity_high.dir/fig13_selectivity_high.cc.o"
  "CMakeFiles/fig13_selectivity_high.dir/fig13_selectivity_high.cc.o.d"
  "fig13_selectivity_high"
  "fig13_selectivity_high.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_selectivity_high.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
