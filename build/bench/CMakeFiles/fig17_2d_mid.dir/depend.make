# Empty dependencies file for fig17_2d_mid.
# This may be replaced when dependencies are built.
