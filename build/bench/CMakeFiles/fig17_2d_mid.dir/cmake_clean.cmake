file(REMOVE_RECURSE
  "CMakeFiles/fig17_2d_mid.dir/fig17_2d_mid.cc.o"
  "CMakeFiles/fig17_2d_mid.dir/fig17_2d_mid.cc.o.d"
  "fig17_2d_mid"
  "fig17_2d_mid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_2d_mid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
