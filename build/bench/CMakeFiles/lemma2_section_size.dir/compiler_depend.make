# Empty compiler generated dependencies file for lemma2_section_size.
# This may be replaced when dependencies are built.
