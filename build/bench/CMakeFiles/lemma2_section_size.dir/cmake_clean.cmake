file(REMOVE_RECURSE
  "CMakeFiles/lemma2_section_size.dir/lemma2_section_size.cc.o"
  "CMakeFiles/lemma2_section_size.dir/lemma2_section_size.cc.o.d"
  "lemma2_section_size"
  "lemma2_section_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lemma2_section_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
