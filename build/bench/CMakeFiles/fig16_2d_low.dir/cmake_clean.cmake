file(REMOVE_RECURSE
  "CMakeFiles/fig16_2d_low.dir/fig16_2d_low.cc.o"
  "CMakeFiles/fig16_2d_low.dir/fig16_2d_low.cc.o.d"
  "fig16_2d_low"
  "fig16_2d_low.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_2d_low.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
