# Empty dependencies file for fig16_2d_low.
# This may be replaced when dependencies are built.
