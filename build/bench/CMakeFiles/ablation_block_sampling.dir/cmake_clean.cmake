file(REMOVE_RECURSE
  "CMakeFiles/ablation_block_sampling.dir/ablation_block_sampling.cc.o"
  "CMakeFiles/ablation_block_sampling.dir/ablation_block_sampling.cc.o.d"
  "ablation_block_sampling"
  "ablation_block_sampling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_block_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
