# Empty compiler generated dependencies file for ablation_block_sampling.
# This may be replaced when dependencies are built.
