
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/heap_file.cc" "src/storage/CMakeFiles/msv_storage.dir/heap_file.cc.o" "gcc" "src/storage/CMakeFiles/msv_storage.dir/heap_file.cc.o.d"
  "/root/repo/src/storage/record.cc" "src/storage/CMakeFiles/msv_storage.dir/record.cc.o" "gcc" "src/storage/CMakeFiles/msv_storage.dir/record.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/msv_util.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/msv_io.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
