file(REMOVE_RECURSE
  "CMakeFiles/msv_storage.dir/heap_file.cc.o"
  "CMakeFiles/msv_storage.dir/heap_file.cc.o.d"
  "CMakeFiles/msv_storage.dir/record.cc.o"
  "CMakeFiles/msv_storage.dir/record.cc.o.d"
  "libmsv_storage.a"
  "libmsv_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msv_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
