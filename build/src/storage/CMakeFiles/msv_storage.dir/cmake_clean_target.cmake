file(REMOVE_RECURSE
  "libmsv_storage.a"
)
