# Empty compiler generated dependencies file for msv_storage.
# This may be replaced when dependencies are built.
