file(REMOVE_RECURSE
  "CMakeFiles/msv_relation.dir/sale_generator.cc.o"
  "CMakeFiles/msv_relation.dir/sale_generator.cc.o.d"
  "CMakeFiles/msv_relation.dir/workload.cc.o"
  "CMakeFiles/msv_relation.dir/workload.cc.o.d"
  "libmsv_relation.a"
  "libmsv_relation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msv_relation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
