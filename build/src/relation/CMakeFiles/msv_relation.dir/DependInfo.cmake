
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/relation/sale_generator.cc" "src/relation/CMakeFiles/msv_relation.dir/sale_generator.cc.o" "gcc" "src/relation/CMakeFiles/msv_relation.dir/sale_generator.cc.o.d"
  "/root/repo/src/relation/workload.cc" "src/relation/CMakeFiles/msv_relation.dir/workload.cc.o" "gcc" "src/relation/CMakeFiles/msv_relation.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/msv_util.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/msv_io.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/msv_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/sampling/CMakeFiles/msv_sampling.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
