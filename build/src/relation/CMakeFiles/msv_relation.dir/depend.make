# Empty dependencies file for msv_relation.
# This may be replaced when dependencies are built.
