file(REMOVE_RECURSE
  "libmsv_relation.a"
)
