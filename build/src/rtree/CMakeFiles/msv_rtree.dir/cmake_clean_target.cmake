file(REMOVE_RECURSE
  "libmsv_rtree.a"
)
