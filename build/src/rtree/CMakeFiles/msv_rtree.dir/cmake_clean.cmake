file(REMOVE_RECURSE
  "CMakeFiles/msv_rtree.dir/rtree.cc.o"
  "CMakeFiles/msv_rtree.dir/rtree.cc.o.d"
  "CMakeFiles/msv_rtree.dir/rtree_sampler.cc.o"
  "CMakeFiles/msv_rtree.dir/rtree_sampler.cc.o.d"
  "libmsv_rtree.a"
  "libmsv_rtree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msv_rtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
