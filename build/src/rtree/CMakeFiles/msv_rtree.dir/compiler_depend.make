# Empty compiler generated dependencies file for msv_rtree.
# This may be replaced when dependencies are built.
