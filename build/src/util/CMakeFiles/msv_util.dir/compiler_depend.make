# Empty compiler generated dependencies file for msv_util.
# This may be replaced when dependencies are built.
