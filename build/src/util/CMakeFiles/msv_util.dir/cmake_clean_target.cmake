file(REMOVE_RECURSE
  "libmsv_util.a"
)
