file(REMOVE_RECURSE
  "CMakeFiles/msv_util.dir/crc32c.cc.o"
  "CMakeFiles/msv_util.dir/crc32c.cc.o.d"
  "CMakeFiles/msv_util.dir/histogram.cc.o"
  "CMakeFiles/msv_util.dir/histogram.cc.o.d"
  "CMakeFiles/msv_util.dir/logging.cc.o"
  "CMakeFiles/msv_util.dir/logging.cc.o.d"
  "CMakeFiles/msv_util.dir/random.cc.o"
  "CMakeFiles/msv_util.dir/random.cc.o.d"
  "CMakeFiles/msv_util.dir/stats.cc.o"
  "CMakeFiles/msv_util.dir/stats.cc.o.d"
  "CMakeFiles/msv_util.dir/status.cc.o"
  "CMakeFiles/msv_util.dir/status.cc.o.d"
  "libmsv_util.a"
  "libmsv_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msv_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
