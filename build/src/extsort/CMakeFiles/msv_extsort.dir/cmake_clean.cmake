file(REMOVE_RECURSE
  "CMakeFiles/msv_extsort.dir/external_sorter.cc.o"
  "CMakeFiles/msv_extsort.dir/external_sorter.cc.o.d"
  "libmsv_extsort.a"
  "libmsv_extsort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msv_extsort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
