# Empty compiler generated dependencies file for msv_extsort.
# This may be replaced when dependencies are built.
