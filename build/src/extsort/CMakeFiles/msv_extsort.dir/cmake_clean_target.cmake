file(REMOVE_RECURSE
  "libmsv_extsort.a"
)
