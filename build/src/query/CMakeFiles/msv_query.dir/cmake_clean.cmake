file(REMOVE_RECURSE
  "CMakeFiles/msv_query.dir/catalog.cc.o"
  "CMakeFiles/msv_query.dir/catalog.cc.o.d"
  "CMakeFiles/msv_query.dir/executor.cc.o"
  "CMakeFiles/msv_query.dir/executor.cc.o.d"
  "CMakeFiles/msv_query.dir/lexer.cc.o"
  "CMakeFiles/msv_query.dir/lexer.cc.o.d"
  "CMakeFiles/msv_query.dir/parser.cc.o"
  "CMakeFiles/msv_query.dir/parser.cc.o.d"
  "libmsv_query.a"
  "libmsv_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msv_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
