file(REMOVE_RECURSE
  "libmsv_query.a"
)
