# Empty compiler generated dependencies file for msv_query.
# This may be replaced when dependencies are built.
