file(REMOVE_RECURSE
  "libmsv_io.a"
)
