file(REMOVE_RECURSE
  "CMakeFiles/msv_io.dir/buffer_pool.cc.o"
  "CMakeFiles/msv_io.dir/buffer_pool.cc.o.d"
  "CMakeFiles/msv_io.dir/disk_model.cc.o"
  "CMakeFiles/msv_io.dir/disk_model.cc.o.d"
  "CMakeFiles/msv_io.dir/env.cc.o"
  "CMakeFiles/msv_io.dir/env.cc.o.d"
  "libmsv_io.a"
  "libmsv_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msv_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
