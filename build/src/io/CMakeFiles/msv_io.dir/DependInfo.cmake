
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/io/buffer_pool.cc" "src/io/CMakeFiles/msv_io.dir/buffer_pool.cc.o" "gcc" "src/io/CMakeFiles/msv_io.dir/buffer_pool.cc.o.d"
  "/root/repo/src/io/disk_model.cc" "src/io/CMakeFiles/msv_io.dir/disk_model.cc.o" "gcc" "src/io/CMakeFiles/msv_io.dir/disk_model.cc.o.d"
  "/root/repo/src/io/env.cc" "src/io/CMakeFiles/msv_io.dir/env.cc.o" "gcc" "src/io/CMakeFiles/msv_io.dir/env.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/msv_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
