# Empty dependencies file for msv_io.
# This may be replaced when dependencies are built.
