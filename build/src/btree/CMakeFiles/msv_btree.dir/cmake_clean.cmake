file(REMOVE_RECURSE
  "CMakeFiles/msv_btree.dir/block_sampler.cc.o"
  "CMakeFiles/msv_btree.dir/block_sampler.cc.o.d"
  "CMakeFiles/msv_btree.dir/btree_sampler.cc.o"
  "CMakeFiles/msv_btree.dir/btree_sampler.cc.o.d"
  "CMakeFiles/msv_btree.dir/ranked_btree.cc.o"
  "CMakeFiles/msv_btree.dir/ranked_btree.cc.o.d"
  "libmsv_btree.a"
  "libmsv_btree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msv_btree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
