file(REMOVE_RECURSE
  "libmsv_btree.a"
)
