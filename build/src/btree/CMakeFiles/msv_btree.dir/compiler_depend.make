# Empty compiler generated dependencies file for msv_btree.
# This may be replaced when dependencies are built.
