file(REMOVE_RECURSE
  "CMakeFiles/msv_permuted.dir/permuted_file.cc.o"
  "CMakeFiles/msv_permuted.dir/permuted_file.cc.o.d"
  "libmsv_permuted.a"
  "libmsv_permuted.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msv_permuted.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
