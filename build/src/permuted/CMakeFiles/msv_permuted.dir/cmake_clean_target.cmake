file(REMOVE_RECURSE
  "libmsv_permuted.a"
)
