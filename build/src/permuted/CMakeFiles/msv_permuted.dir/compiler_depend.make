# Empty compiler generated dependencies file for msv_permuted.
# This may be replaced when dependencies are built.
