file(REMOVE_RECURSE
  "libmsv_core.a"
)
