
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/ace_builder.cc" "src/core/CMakeFiles/msv_core.dir/ace_builder.cc.o" "gcc" "src/core/CMakeFiles/msv_core.dir/ace_builder.cc.o.d"
  "/root/repo/src/core/ace_format.cc" "src/core/CMakeFiles/msv_core.dir/ace_format.cc.o" "gcc" "src/core/CMakeFiles/msv_core.dir/ace_format.cc.o.d"
  "/root/repo/src/core/ace_sampler.cc" "src/core/CMakeFiles/msv_core.dir/ace_sampler.cc.o" "gcc" "src/core/CMakeFiles/msv_core.dir/ace_sampler.cc.o.d"
  "/root/repo/src/core/ace_tree.cc" "src/core/CMakeFiles/msv_core.dir/ace_tree.cc.o" "gcc" "src/core/CMakeFiles/msv_core.dir/ace_tree.cc.o.d"
  "/root/repo/src/core/combine_engine.cc" "src/core/CMakeFiles/msv_core.dir/combine_engine.cc.o" "gcc" "src/core/CMakeFiles/msv_core.dir/combine_engine.cc.o.d"
  "/root/repo/src/core/sample_view.cc" "src/core/CMakeFiles/msv_core.dir/sample_view.cc.o" "gcc" "src/core/CMakeFiles/msv_core.dir/sample_view.cc.o.d"
  "/root/repo/src/core/split_tree.cc" "src/core/CMakeFiles/msv_core.dir/split_tree.cc.o" "gcc" "src/core/CMakeFiles/msv_core.dir/split_tree.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/msv_util.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/msv_io.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/msv_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/extsort/CMakeFiles/msv_extsort.dir/DependInfo.cmake"
  "/root/repo/build/src/sampling/CMakeFiles/msv_sampling.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
