# Empty compiler generated dependencies file for msv_core.
# This may be replaced when dependencies are built.
