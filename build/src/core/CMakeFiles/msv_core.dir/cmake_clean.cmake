file(REMOVE_RECURSE
  "CMakeFiles/msv_core.dir/ace_builder.cc.o"
  "CMakeFiles/msv_core.dir/ace_builder.cc.o.d"
  "CMakeFiles/msv_core.dir/ace_format.cc.o"
  "CMakeFiles/msv_core.dir/ace_format.cc.o.d"
  "CMakeFiles/msv_core.dir/ace_sampler.cc.o"
  "CMakeFiles/msv_core.dir/ace_sampler.cc.o.d"
  "CMakeFiles/msv_core.dir/ace_tree.cc.o"
  "CMakeFiles/msv_core.dir/ace_tree.cc.o.d"
  "CMakeFiles/msv_core.dir/combine_engine.cc.o"
  "CMakeFiles/msv_core.dir/combine_engine.cc.o.d"
  "CMakeFiles/msv_core.dir/sample_view.cc.o"
  "CMakeFiles/msv_core.dir/sample_view.cc.o.d"
  "CMakeFiles/msv_core.dir/split_tree.cc.o"
  "CMakeFiles/msv_core.dir/split_tree.cc.o.d"
  "libmsv_core.a"
  "libmsv_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msv_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
