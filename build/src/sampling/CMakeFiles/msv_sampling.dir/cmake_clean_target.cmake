file(REMOVE_RECURSE
  "libmsv_sampling.a"
)
