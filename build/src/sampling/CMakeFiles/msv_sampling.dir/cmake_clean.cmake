file(REMOVE_RECURSE
  "CMakeFiles/msv_sampling.dir/grouped_aggregator.cc.o"
  "CMakeFiles/msv_sampling.dir/grouped_aggregator.cc.o.d"
  "CMakeFiles/msv_sampling.dir/online_aggregator.cc.o"
  "CMakeFiles/msv_sampling.dir/online_aggregator.cc.o.d"
  "CMakeFiles/msv_sampling.dir/range_query.cc.o"
  "CMakeFiles/msv_sampling.dir/range_query.cc.o.d"
  "libmsv_sampling.a"
  "libmsv_sampling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msv_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
