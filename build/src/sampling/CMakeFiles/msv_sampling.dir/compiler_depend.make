# Empty compiler generated dependencies file for msv_sampling.
# This may be replaced when dependencies are built.
