# Empty compiler generated dependencies file for msv_inspect.
# This may be replaced when dependencies are built.
