file(REMOVE_RECURSE
  "CMakeFiles/msv_inspect.dir/msv_inspect.cc.o"
  "CMakeFiles/msv_inspect.dir/msv_inspect.cc.o.d"
  "msv_inspect"
  "msv_inspect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msv_inspect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
