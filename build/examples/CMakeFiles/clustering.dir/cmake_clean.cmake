file(REMOVE_RECURSE
  "CMakeFiles/clustering.dir/clustering.cc.o"
  "CMakeFiles/clustering.dir/clustering.cc.o.d"
  "clustering"
  "clustering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
