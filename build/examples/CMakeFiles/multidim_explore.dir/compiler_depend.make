# Empty compiler generated dependencies file for multidim_explore.
# This may be replaced when dependencies are built.
