file(REMOVE_RECURSE
  "CMakeFiles/multidim_explore.dir/multidim_explore.cc.o"
  "CMakeFiles/multidim_explore.dir/multidim_explore.cc.o.d"
  "multidim_explore"
  "multidim_explore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multidim_explore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
