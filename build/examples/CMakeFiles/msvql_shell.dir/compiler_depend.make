# Empty compiler generated dependencies file for msvql_shell.
# This may be replaced when dependencies are built.
