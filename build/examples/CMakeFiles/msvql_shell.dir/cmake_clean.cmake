file(REMOVE_RECURSE
  "CMakeFiles/msvql_shell.dir/msvql_shell.cc.o"
  "CMakeFiles/msvql_shell.dir/msvql_shell.cc.o.d"
  "msvql_shell"
  "msvql_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msvql_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
