# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/io_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/extsort_test[1]_include.cmake")
include("/root/repo/build/tests/sampling_test[1]_include.cmake")
include("/root/repo/build/tests/permuted_test[1]_include.cmake")
include("/root/repo/build/tests/btree_test[1]_include.cmake")
include("/root/repo/build/tests/rtree_test[1]_include.cmake")
include("/root/repo/build/tests/ace_format_test[1]_include.cmake")
include("/root/repo/build/tests/ace_build_test[1]_include.cmake")
include("/root/repo/build/tests/ace_query_test[1]_include.cmake")
include("/root/repo/build/tests/failure_injection_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/sample_view_test[1]_include.cmake")
include("/root/repo/build/tests/query_test[1]_include.cmake")
include("/root/repo/build/tests/skewed_data_test[1]_include.cmake")
