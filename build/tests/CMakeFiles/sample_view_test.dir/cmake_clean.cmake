file(REMOVE_RECURSE
  "CMakeFiles/sample_view_test.dir/sample_view_test.cc.o"
  "CMakeFiles/sample_view_test.dir/sample_view_test.cc.o.d"
  "sample_view_test"
  "sample_view_test.pdb"
  "sample_view_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sample_view_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
