# Empty compiler generated dependencies file for sample_view_test.
# This may be replaced when dependencies are built.
