file(REMOVE_RECURSE
  "CMakeFiles/skewed_data_test.dir/skewed_data_test.cc.o"
  "CMakeFiles/skewed_data_test.dir/skewed_data_test.cc.o.d"
  "skewed_data_test"
  "skewed_data_test.pdb"
  "skewed_data_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skewed_data_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
