# Empty dependencies file for skewed_data_test.
# This may be replaced when dependencies are built.
