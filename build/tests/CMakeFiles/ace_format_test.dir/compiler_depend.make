# Empty compiler generated dependencies file for ace_format_test.
# This may be replaced when dependencies are built.
