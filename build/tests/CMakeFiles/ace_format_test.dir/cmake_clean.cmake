file(REMOVE_RECURSE
  "CMakeFiles/ace_format_test.dir/ace_format_test.cc.o"
  "CMakeFiles/ace_format_test.dir/ace_format_test.cc.o.d"
  "ace_format_test"
  "ace_format_test.pdb"
  "ace_format_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ace_format_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
