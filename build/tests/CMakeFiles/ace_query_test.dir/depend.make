# Empty dependencies file for ace_query_test.
# This may be replaced when dependencies are built.
