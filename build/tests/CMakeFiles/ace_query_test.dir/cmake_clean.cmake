file(REMOVE_RECURSE
  "CMakeFiles/ace_query_test.dir/ace_query_test.cc.o"
  "CMakeFiles/ace_query_test.dir/ace_query_test.cc.o.d"
  "ace_query_test"
  "ace_query_test.pdb"
  "ace_query_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ace_query_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
