file(REMOVE_RECURSE
  "CMakeFiles/ace_build_test.dir/ace_build_test.cc.o"
  "CMakeFiles/ace_build_test.dir/ace_build_test.cc.o.d"
  "ace_build_test"
  "ace_build_test.pdb"
  "ace_build_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ace_build_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
