# Empty dependencies file for ace_build_test.
# This may be replaced when dependencies are built.
