file(REMOVE_RECURSE
  "CMakeFiles/extsort_test.dir/extsort_test.cc.o"
  "CMakeFiles/extsort_test.dir/extsort_test.cc.o.d"
  "extsort_test"
  "extsort_test.pdb"
  "extsort_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extsort_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
