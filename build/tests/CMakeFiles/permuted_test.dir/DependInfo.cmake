
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/permuted_test.cc" "tests/CMakeFiles/permuted_test.dir/permuted_test.cc.o" "gcc" "tests/CMakeFiles/permuted_test.dir/permuted_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/query/CMakeFiles/msv_query.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/msv_core.dir/DependInfo.cmake"
  "/root/repo/build/src/btree/CMakeFiles/msv_btree.dir/DependInfo.cmake"
  "/root/repo/build/src/rtree/CMakeFiles/msv_rtree.dir/DependInfo.cmake"
  "/root/repo/build/src/permuted/CMakeFiles/msv_permuted.dir/DependInfo.cmake"
  "/root/repo/build/src/relation/CMakeFiles/msv_relation.dir/DependInfo.cmake"
  "/root/repo/build/src/sampling/CMakeFiles/msv_sampling.dir/DependInfo.cmake"
  "/root/repo/build/src/extsort/CMakeFiles/msv_extsort.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/msv_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/msv_io.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/msv_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
