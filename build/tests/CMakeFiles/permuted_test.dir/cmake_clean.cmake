file(REMOVE_RECURSE
  "CMakeFiles/permuted_test.dir/permuted_test.cc.o"
  "CMakeFiles/permuted_test.dir/permuted_test.cc.o.d"
  "permuted_test"
  "permuted_test.pdb"
  "permuted_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/permuted_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
