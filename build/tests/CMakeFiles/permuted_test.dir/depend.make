# Empty dependencies file for permuted_test.
# This may be replaced when dependencies are built.
